// Package optimize implements the optimisation substrate behind step 4 of
// the FePIA procedure: finding the minimum-Euclidean-norm perturbation that
// drives an impact function onto a boundary relationship
//
//	min_x ‖x − x₀‖₂   subject to   f(x) = target.
//
// The paper observes (§3.2) that when f is convex this is a convex program
// with an attainable global minimum; for affine f it collapses to the
// point-to-hyperplane formula. This package provides
//
//   - scalar root finding (bracketing + hybrid bisection/secant),
//   - golden-section minimisation,
//   - numerical gradients,
//   - a sequential-linearisation solver for the minimum-norm boundary
//     problem with ray-retraction and multistart, and
//   - a simulated-annealing fallback for non-convex impact functions,
//     which the paper explicitly permits ("heuristic techniques can be
//     used to find near-optimal solutions").
package optimize

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket indicates a sign change could not be established for root
// finding — typically the level set is unreachable along the ray searched.
var ErrNoBracket = errors.New("optimize: could not bracket a root")

// ErrMaxIter indicates an iteration limit was hit before reaching the
// requested tolerance.
var ErrMaxIter = errors.New("optimize: iteration limit exceeded")

// Bisect finds a root of g in [lo, hi], where g(lo) and g(hi) must have
// opposite signs (zero endpoints are returned immediately). It uses plain
// bisection with a secant acceleration step when safe, achieving |g| ≤ tol
// or an interval of width ≤ tol. It returns ErrMaxIter if maxIter halvings
// do not suffice.
func Bisect(g func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	if lo > hi {
		lo, hi = hi, lo
	}
	glo, ghi := g(lo), g(hi)
	if glo == 0 {
		return lo, nil
	}
	if ghi == 0 {
		return hi, nil
	}
	if math.IsNaN(glo) || math.IsNaN(ghi) || glo*ghi > 0 {
		return 0, fmt.Errorf("%w: g(%v)=%v, g(%v)=%v", ErrNoBracket, lo, glo, hi, ghi)
	}
	for iter := 0; iter < maxIter; iter++ {
		mid := 0.5 * (lo + hi)
		// Secant candidate on alternate iterations only, and only when it
		// lands strictly inside the bracket: a lone secant step can stall
		// against a bracket endpoint of much larger magnitude (e.g. a
		// saturation plateau), while alternating with bisection guarantees
		// the interval halves at least every other iteration.
		if d := ghi - glo; d != 0 && iter%2 == 1 {
			sec := lo - glo*(hi-lo)/d
			if sec > lo && sec < hi {
				mid = sec
			}
		}
		gm := g(mid)
		if math.Abs(gm) <= tol || hi-lo <= tol {
			return mid, nil
		}
		if glo*gm < 0 {
			hi, ghi = mid, gm
		} else {
			lo, glo = mid, gm
		}
	}
	return 0.5 * (lo + hi), ErrMaxIter
}

// BracketAbove expands an interval [0, t] geometrically until
// g(t) ≥ 0 (given g(0) < 0), returning the bracketing t. It is used to find
// where an increasing excursion crosses a boundary level. It fails with
// ErrNoBracket if the level is not reached before tMax.
func BracketAbove(g func(float64) float64, t0, tMax float64) (float64, error) {
	if t0 <= 0 {
		t0 = 1
	}
	for t := t0; t <= tMax; t *= 2 {
		v := g(t)
		if math.IsNaN(v) {
			return 0, fmt.Errorf("%w: g(%v) is NaN", ErrNoBracket, t)
		}
		if v >= 0 {
			return t, nil
		}
	}
	return 0, fmt.Errorf("%w: no crossing before t=%v", ErrNoBracket, tMax)
}

// GoldenSection minimises a unimodal scalar function on [lo, hi] to within
// tol, returning the minimiser. For non-unimodal functions it returns a
// local minimiser.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	const invPhi = 0.6180339887498949 // 1/φ
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}
