package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// Objective wraps an impact function f: ℝⁿ → ℝ and, optionally, its
// gradient. When Grad is nil, central finite differences are used.
type Objective struct {
	// F evaluates the impact function.
	F func(x []float64) float64
	// Grad, if non-nil, stores ∇f(x) into dst (allocating when dst is nil)
	// and returns it.
	Grad func(dst, x []float64) []float64
}

// Gradient returns ∇f(x), using the analytic gradient when available and
// central differences with step h otherwise. dst is reused when it has the
// right length.
func (o Objective) Gradient(dst, x []float64, h float64) []float64 {
	if o.Grad != nil {
		return o.Grad(dst, x)
	}
	if len(dst) != len(x) {
		dst = make([]float64, len(x))
	}
	xx := vecmath.Clone(x)
	for i := range x {
		step := h * math.Max(1, math.Abs(x[i]))
		xx[i] = x[i] + step
		fp := o.F(xx)
		xx[i] = x[i] - step
		fm := o.F(xx)
		xx[i] = x[i]
		dst[i] = (fp - fm) / (2 * step)
	}
	return dst
}

// Options tunes the minimum-norm boundary solver. The zero value is not
// usable; call DefaultOptions.
type Options struct {
	// Tol is the convergence tolerance on both the constraint residual
	// (relative to |target|) and the distance improvement.
	Tol float64
	// MaxIter bounds the sequential-linearisation iterations per start.
	MaxIter int
	// Restarts is the number of additional random-direction starts used to
	// escape poor initialisations (and to survive mild non-convexity).
	Restarts int
	// Seed drives the deterministic multistart direction sampling.
	Seed int64
	// GradStep is the relative finite-difference step for numeric
	// gradients.
	GradStep float64
	// RayMax bounds the bracketing excursion along any ray, expressed as a
	// multiple of (1 + ‖x₀‖). Level sets beyond it are treated as
	// unreachable.
	RayMax float64
}

// DefaultOptions returns solver settings that resolve the paper's systems
// to ~1e-9 relative accuracy.
func DefaultOptions() Options {
	return Options{
		Tol:      1e-10,
		MaxIter:  200,
		Restarts: 8,
		Seed:     1,
		GradStep: 1e-6,
		RayMax:   1e9,
	}
}

// Result reports a minimum-norm boundary solution.
type Result struct {
	// X is the boundary point found (f(X) = target within tolerance).
	X []float64
	// Distance is ‖X − x₀‖₂ — a robustness radius when x₀ = π^orig and
	// target is a bound β.
	Distance float64
	// Iterations counts linearisation steps summed over restarts.
	Iterations int
	// Converged reports whether the last accepted iterate met the
	// tolerance before hitting MaxIter.
	Converged bool
}

// ErrUnreachable indicates that the level set f(x) = target could not be
// reached from x₀ along any direction tried (e.g. a constant impact
// function below its bound — the feature can never violate, so the
// robustness radius is +Inf).
var ErrUnreachable = errors.New("optimize: level set unreachable from the starting point")

// MinNormToLevelSet solves min ‖x − x₀‖₂ s.t. f(x) = target using
// sequential linearisation:
//
//  1. find any boundary point by searching along a ray from x₀ (the
//     gradient direction first, then random restarts);
//  2. at the current boundary point x_k, replace f by its tangent plane
//     and project x₀ onto it (the exact solution for affine f);
//  3. retract the projection back onto the true boundary along the ray
//     from x₀ through it (scalar root find);
//  4. repeat until the distance stops improving.
//
// For convex f this converges to the global minimum-norm point (the
// iteration is a fixed point exactly at the KKT condition
// x* − x₀ ∥ ∇f(x*)). For non-convex f, use AnnealMinDistance and take the
// better of the two.
//
// If f(x₀) = target the distance is 0. The sign of f(x₀) − target selects
// which side the boundary is approached from automatically.
func MinNormToLevelSet(obj Objective, x0 []float64, target float64, opts Options) (Result, error) {
	return MinNormToLevelSetCtx(context.Background(), obj, x0, target, opts, nil)
}

// MinNormToLevelSetCtx is MinNormToLevelSet under a context with an
// optional stream of certified lower bounds. With a background context
// and a nil callback it performs exactly the same evaluations in the
// same order as MinNormToLevelSet, so the results are bit-identical.
//
// onBound, when non-nil, receives a monotonically increasing stream of
// certified lower bounds on the true minimum distance, derived from the
// supporting-halfspace inequality at each iterate x with gradient g:
// convexity puts the whole level set inside {y : g·(y−x) ≤ target−f(x)},
// so whenever x₀ lies outside that halfspace its distance to it,
// (f(x)+g·(x₀−x)−target)/‖g‖, bounds the answer from below. The bound is
// only valid for convex f — pass nil otherwise. Approaching the level
// from below (f(x₀) < target) the expression is never positive and the
// callback simply never fires; CertifyLevelBelow covers that side.
//
// When ctx expires mid-search, the best result found so far is returned
// together with ctx.Err(): the Result is a usable upper bound (or zero
// with Distance +Inf when nothing was found) but not certified optimal.
func MinNormToLevelSetCtx(ctx context.Context, obj Objective, x0 []float64, target float64, opts Options, onBound func(lower float64)) (Result, error) {
	if opts.MaxIter <= 0 || opts.Tol <= 0 {
		return Result{}, fmt.Errorf("optimize: invalid options %+v", opts)
	}
	f0 := obj.F(x0)
	scale := math.Max(1, math.Abs(target))
	if math.Abs(f0-target) <= opts.Tol*scale {
		return Result{X: vecmath.Clone(x0), Distance: 0, Converged: true}, nil
	}

	rng := stats.NewRNG(opts.Seed)
	n := len(x0)
	best := Result{Distance: math.Inf(1)}
	totalIter := 0

	// Initial search directions: ±gradient at x₀, then random unit vectors.
	grad0 := obj.Gradient(nil, x0, opts.GradStep)
	var track *boundTracker
	if onBound != nil {
		track = &boundTracker{x0: x0, target: target, report: onBound}
		// The operating point itself is the first iterate: its halfspace
		// bound costs nothing extra and certifies before any ray search.
		track.observe(x0, grad0, f0, vecmath.Euclidean(grad0))
	}
	dirs := make([][]float64, 0, opts.Restarts+2)
	if g, norm := vecmath.Normalize(nil, grad0); norm > 0 {
		dirs = append(dirs, g, vecmath.Scale(nil, -1, g))
	}
	for len(dirs) < opts.Restarts+2 {
		d := make([]float64, n)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		if u, norm := vecmath.Normalize(nil, d); norm > 0 {
			dirs = append(dirs, u)
		}
	}

	rayMax := opts.RayMax * (1 + vecmath.Euclidean(x0))
	for _, dir := range dirs {
		if ctx.Err() != nil {
			break
		}
		x, err := boundaryOnRay(obj, x0, dir, target, rayMax, opts)
		if err != nil {
			continue
		}
		res := refineBoundary(ctx, obj, x0, x, target, opts, track)
		totalIter += res.Iterations
		if res.Distance < best.Distance {
			best = res
		}
		if best.Converged && best.Distance == 0 {
			break
		}
	}
	best.Iterations = totalIter
	if cerr := ctx.Err(); cerr != nil {
		if math.IsInf(best.Distance, 1) {
			return Result{}, cerr
		}
		return best, cerr
	}
	if math.IsInf(best.Distance, 1) {
		return Result{}, ErrUnreachable
	}
	return best, nil
}

// boundTracker turns solver iterates into the monotone certified
// lower-bound stream of MinNormToLevelSetCtx: it keeps the best
// halfspace bound seen and reports only improvements.
type boundTracker struct {
	x0     []float64
	target float64
	best   float64
	report func(lower float64)
}

// observe evaluates the supporting-halfspace bound at iterate x, where
// fx = f(x), grad = ∇f(x) and gnorm = ‖grad‖ are already in hand — the
// certification reuses the solver's own evaluations and costs only two
// dot products.
func (t *boundTracker) observe(x, grad []float64, fx, gnorm float64) {
	if t == nil || gnorm == 0 || math.IsNaN(gnorm) {
		return
	}
	lb := (fx - t.target + vecmath.Dot(grad, t.x0) - vecmath.Dot(grad, x)) / gnorm
	if lb > t.best && !math.IsInf(lb, 1) {
		t.best = lb
		t.report(lb)
	}
}

// boundaryOnRay finds the smallest t > 0 with f(x₀ + t·dir) = target.
func boundaryOnRay(obj Objective, x0, dir []float64, target, rayMax float64, opts Options) ([]float64, error) {
	buf := make([]float64, len(x0))
	h := func(t float64) float64 {
		vecmath.AddScaled(buf, x0, t, dir)
		return obj.F(buf) - target
	}
	sign := 1.0
	if h(0) > 0 {
		sign = -1.0 // approach the level set from above
	}
	hi, err := BracketAbove(func(t float64) float64 { return sign * h(t) }, 1e-6, rayMax)
	if err != nil {
		return nil, err
	}
	t, err := Bisect(h, 0, hi, opts.Tol*math.Max(1, math.Abs(target)), 200)
	if err != nil && !errors.Is(err, ErrMaxIter) {
		return nil, err
	}
	// Never hand back a point that is not actually on the level set: a
	// bracketing interval can close onto a jump discontinuity (the level
	// is skipped entirely) without |h| ever getting small.
	if math.Abs(h(t)) > 1e-6*math.Max(1, math.Abs(target)) {
		return nil, fmt.Errorf("%w: ray crossing is a discontinuity, |f−target|=%v", ErrNoBracket, math.Abs(h(t)))
	}
	return vecmath.AddScaled(nil, x0, t, dir), nil
}

// refineBoundary runs the linearise-project-retract loop from boundary
// point x, reporting each iterate's halfspace bound to track (nil-safe)
// and stopping early when ctx expires.
func refineBoundary(ctx context.Context, obj Objective, x0, x []float64, target float64, opts Options, track *boundTracker) Result {
	scale := math.Max(1, math.Abs(target))
	rayMax := opts.RayMax * (1 + vecmath.Euclidean(x0))
	dist := vecmath.Distance(x0, x)
	grad := make([]float64, len(x))
	converged := false
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		if ctx.Err() != nil {
			break
		}
		grad = obj.Gradient(grad, x, opts.GradStep)
		gnorm := vecmath.Euclidean(grad)
		if gnorm == 0 {
			break // flat spot: cannot linearise further
		}
		fx := obj.F(x)
		track.observe(x, grad, fx, gnorm)
		// Tangent plane at x: ∇f(x)·(y − x) = 0 shifted to pass through the
		// level set, i.e. ∇f·y = ∇f·x + (target − f(x)).
		c := vecmath.Dot(grad, x) + (target - fx)
		plane := vecmath.Hyperplane{A: grad, C: c}
		proj := plane.Project(nil, x0)
		// Retract the projection onto the true boundary along the ray
		// x₀ → proj.
		dir := vecmath.Sub(nil, proj, x0)
		u, norm := vecmath.Normalize(nil, dir)
		var next []float64
		if norm == 0 {
			next = proj
		} else {
			var err error
			next, err = boundaryOnRay(obj, x0, u, target, rayMax, opts)
			if err != nil {
				break
			}
		}
		nd := vecmath.Distance(x0, next)
		improved := nd < dist-opts.Tol*math.Max(1, dist)
		if nd < dist {
			x, dist = next, nd
		}
		onBoundary := math.Abs(obj.F(x)-target) <= 1e3*opts.Tol*scale
		// KKT: at the optimum, (x−x₀) is parallel to ∇f(x).
		if onBoundary && aligned(x0, x, obj.Gradient(grad, x, opts.GradStep), opts.Tol) {
			converged = true
			break
		}
		if !improved {
			// Stalled without alignment (e.g. non-smooth boundary): accept
			// the best point found as near-optimal if it is feasible.
			converged = onBoundary
			break
		}
	}
	return Result{X: x, Distance: dist, Iterations: iters, Converged: converged}
}

// aligned reports whether x−x₀ and g point along the same line to within a
// loose angular tolerance.
func aligned(x0, x, g []float64, tol float64) bool {
	d := vecmath.Sub(nil, x, x0)
	nd := vecmath.Euclidean(d)
	ng := vecmath.Euclidean(g)
	if nd == 0 || ng == 0 {
		return true
	}
	cos := math.Abs(vecmath.Dot(d, g)) / (nd * ng)
	return cos >= 1-1e2*tol
}
