package optimize

import (
	"context"
	"math"

	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// AnnealOptions tunes the simulated-annealing fallback solver.
type AnnealOptions struct {
	// Steps is the number of annealing proposals.
	Steps int
	// InitialTemp and FinalTemp bound the geometric cooling schedule,
	// expressed relative to the starting distance.
	InitialTemp, FinalTemp float64
	// Sigma is the relative perturbation applied to the search direction
	// per proposal.
	Sigma float64
	// Seed drives the deterministic proposal stream.
	Seed int64
	// Tol and RayMax mirror Options for the inner root finds.
	Tol, RayMax float64
}

// DefaultAnnealOptions returns a schedule adequate for the smooth
// low-dimensional impact functions in this repository.
func DefaultAnnealOptions() AnnealOptions {
	return AnnealOptions{
		Steps:       4000,
		InitialTemp: 0.5,
		FinalTemp:   1e-4,
		Sigma:       0.35,
		Seed:        1,
		Tol:         1e-10,
		RayMax:      1e9,
	}
}

// AnnealMinDistance approximates min ‖x − x₀‖₂ s.t. f(x) = target for
// possibly non-convex f by annealing over ray directions: a state is a unit
// direction u, its energy is the distance t(u) along the ray x₀ + t·u to
// the first boundary crossing (infinite when the ray misses the level set).
// The paper sanctions exactly this kind of heuristic when the impact
// functions are not convex.
//
// It returns ErrUnreachable when no sampled ray ever crosses the level set.
func AnnealMinDistance(obj Objective, x0 []float64, target float64, opts AnnealOptions) (Result, error) {
	return AnnealMinDistanceCtx(context.Background(), obj, x0, target, opts)
}

// AnnealMinDistanceCtx is AnnealMinDistance under a context: the
// proposal loop polls ctx every few steps and, on expiry, returns
// whatever it has found so far together with ctx.Err(). A partial
// annealing run is NOT a certified answer of any kind — callers that
// need rigour (the anytime mode) must discard it. With a background
// context the proposal stream and result are bit-identical to
// AnnealMinDistance.
func AnnealMinDistanceCtx(ctx context.Context, obj Objective, x0 []float64, target float64, opts AnnealOptions) (Result, error) {
	n := len(x0)
	rng := stats.NewRNG(opts.Seed)
	innerOpts := Options{Tol: opts.Tol, MaxIter: 200, RayMax: opts.RayMax, GradStep: 1e-6}
	rayMax := opts.RayMax * (1 + vecmath.Euclidean(x0))

	f0 := obj.F(x0)
	if math.Abs(f0-target) <= opts.Tol*math.Max(1, math.Abs(target)) {
		return Result{X: vecmath.Clone(x0), Distance: 0, Converged: true}, nil
	}

	energy := func(u []float64) (float64, []float64) {
		x, err := boundaryOnRay(obj, x0, u, target, rayMax, innerOpts)
		if err != nil {
			return math.Inf(1), nil
		}
		return vecmath.Distance(x0, x), x
	}

	randUnit := func() []float64 {
		u := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		v, norm := vecmath.Normalize(nil, u)
		if norm == 0 {
			v[0] = 1
		}
		return v
	}

	// Seed the search with the gradient direction plus random probes.
	cur := randUnit()
	if g, norm := vecmath.Normalize(nil, obj.Gradient(nil, x0, 1e-6)); norm > 0 {
		if f0 > target {
			vecmath.Scale(g, -1, g)
		}
		cur = g
	}
	curE, curX := energy(cur)
	for probe := 0; probe < 16 && math.IsInf(curE, 1) && ctx.Err() == nil; probe++ {
		cur = randUnit()
		curE, curX = energy(cur)
	}
	best := Result{Distance: curE, X: curX}

	if opts.Steps <= 0 {
		if math.IsInf(best.Distance, 1) {
			return Result{}, ErrUnreachable
		}
		return best, nil
	}

	t0 := opts.InitialTemp
	t1 := opts.FinalTemp
	if !(t0 > 0) || !(t1 > 0) || t1 > t0 {
		t0, t1 = 0.5, 1e-4
	}
	scaleE := curE
	if math.IsInf(scaleE, 1) || scaleE == 0 {
		scaleE = 1
	}
	for step := 0; step < opts.Steps; step++ {
		// Poll coarsely: each energy() is itself many evaluations, so an
		// every-8-steps check keeps expiry latency in the microseconds
		// without a per-proposal syscall-free-but-branchy ctx load.
		if step%8 == 0 && ctx.Err() != nil {
			if math.IsInf(best.Distance, 1) {
				return Result{}, ctx.Err()
			}
			return best, ctx.Err()
		}
		frac := float64(step) / float64(opts.Steps)
		temp := scaleE * t0 * math.Pow(t1/t0, frac)
		// Propose: jitter the direction and renormalise.
		prop := make([]float64, n)
		for i := range prop {
			prop[i] = cur[i] + opts.Sigma*rng.NormFloat64()
		}
		u, norm := vecmath.Normalize(nil, prop)
		if norm == 0 {
			continue
		}
		pe, px := energy(u)
		accept := false
		switch {
		case math.IsInf(pe, 1):
			accept = false
		case math.IsInf(curE, 1) || pe <= curE:
			accept = true
		default:
			accept = rng.Float64() < math.Exp(-(pe-curE)/temp)
		}
		if accept {
			cur, curE = u, pe
			if pe < best.Distance {
				best = Result{Distance: pe, X: px}
			}
		}
		best.Iterations++
	}
	if math.IsInf(best.Distance, 1) {
		return Result{}, ErrUnreachable
	}
	best.Converged = true
	return best, nil
}
