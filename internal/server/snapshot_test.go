package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fepia/internal/faults"
	"fepia/internal/spec"
)

// snapVars decodes the always-present fepiad.snapshot object.
func snapVars(t *testing.T, base string) map[string]float64 {
	t.Helper()
	raw, ok := getVars(t, base)["fepiad.snapshot"].(map[string]any)
	if !ok {
		t.Fatal("fepiad.snapshot missing from /debug/vars")
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		f, ok := v.(float64)
		if !ok {
			t.Fatalf("fepiad.snapshot.%s is %T, want a number", k, v)
		}
		out[k] = f
	}
	return out
}

// writeGoodSnapshot boots a throwaway server on the path, serves one
// document to warm its cache, and drains a snapshot — the fixture every
// restart test restores from.
func writeGoodSnapshot(t *testing.T, path, doc string) {
	t.Helper()
	s := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d (%s)", resp.StatusCode, body)
	}
	s.drainSnapshot()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("drain wrote no snapshot: %v", err)
	}
}

// The restart story end to end: a node warms its cache, drains a
// snapshot on shutdown, and the next process answers its very first
// request from the warm cache — meta.cache "hit", no solver work.
func TestSnapshotRestartWarmFirstRequest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	doc := linearSpec(1)

	// First life: serve under Run so shutdown takes the drain path.
	s1 := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s1.Run(ctx, l) }()
	url := "http://" + l.Addr().String()
	if resp, body := postJSON(t, url+"/v1/analyze", doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("first life: status %d (%s)", resp.StatusCode, body)
	}
	stop() // SIGTERM: drain, snapshot, exit
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not drain")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot after drain: %v", err)
	}

	// Second life: New() restores at boot; the first request must hit.
	s2 := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1}))
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second life: status %d (%s)", resp.StatusCode, body)
	}
	var res spec.ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Meta == nil || res.Meta.Cache != spec.CacheHit {
		t.Fatalf("first post-restart request not served warm: meta = %+v", res.Meta)
	}
	sv := snapVars(t, ts.URL)
	if sv["loads"] != 1 || sv["restored_entries"] == 0 || sv["load_failures"] != 0 {
		t.Fatalf("snapshot vars after warm boot = %v", sv)
	}

	// The snapshot series exist on the Prometheus surface too.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	exposition, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"fepiad_snapshot_loads_total", "fepiad_snapshot_restored_entries", "fepiad_anytime_partial_total"} {
		if !strings.Contains(string(exposition), series) {
			t.Errorf("%s missing from /metrics", series)
		}
	}
}

// A corrupt snapshot must cost nothing but warmth: the node boots cold,
// counts the failure, and serves normally — never a crash.
func TestSnapshotChaosCorruptFileBootsCold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := os.WriteFile(path, []byte("FPSN garbage that is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/analyze", linearSpec(2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("serving after corrupt snapshot: status %d (%s)", resp.StatusCode, body)
	}
	sv := snapVars(t, ts.URL)
	if sv["load_failures"] != 1 || sv["loads"] != 0 || sv["restored_entries"] != 0 {
		t.Fatalf("snapshot vars after corrupt boot = %v", sv)
	}
}

// A partial temp file from a writer that died mid-write sits at
// path+".tmp" and must be ignored: the last completed snapshot loads.
func TestSnapshotChaosPartialTempIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	doc := linearSpec(3)
	writeGoodSnapshot(t, path, doc)
	if err := os.WriteFile(path+".tmp", []byte("half a snapsh"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var res spec.ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Meta == nil || res.Meta.Cache != spec.CacheHit {
		t.Fatalf("good snapshot not loaded past the stale temp file: meta = %+v", res.Meta)
	}
	if sv := snapVars(t, ts.URL); sv["loads"] != 1 || sv["load_failures"] != 0 {
		t.Fatalf("snapshot vars = %v", sv)
	}
}

// An injected snapshot_write fault — error or panic kind — fails the
// write, keeps the previous good snapshot untouched, and never takes the
// process down.
func TestSnapshotChaosWriteFaultKeepsLastGood(t *testing.T) {
	for _, kind := range []faults.Kind{faults.KindError, faults.KindPanic} {
		t.Run(string(kind), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cache.snap")
			doc := linearSpec(4)
			writeGoodSnapshot(t, path, doc)
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			inj := faults.NewSeeded(1, faults.Config{
				Rates: map[faults.Point]map[faults.Kind]float64{
					faults.SnapshotWrite: {kind: 1.0},
				},
			})
			s := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1, Injector: inj}))
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			if resp, body := postJSON(t, ts.URL+"/v1/analyze", doc); resp.StatusCode != http.StatusOK {
				t.Fatalf("warm-up: status %d (%s)", resp.StatusCode, body)
			}
			s.drainSnapshot() // must fail via the injected fault, not panic

			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(after) != string(good) {
				t.Fatal("failed write damaged the previous good snapshot")
			}
			if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
				t.Fatalf("temp file left behind after failed write: %v", err)
			}
			if sv := snapVars(t, ts.URL); sv["write_failures"] != 1 || sv["writes"] != 0 {
				t.Fatalf("snapshot vars = %v", sv)
			}

			// The last good snapshot still boots the next process warm.
			s2 := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: -1}))
			ts2 := httptest.NewServer(s2.Handler())
			defer ts2.Close()
			resp, body := postJSON(t, ts2.URL+"/v1/analyze", doc)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("reboot from last good: status %d (%s)", resp.StatusCode, body)
			}
			var res spec.ResultJSON
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatal(err)
			}
			if res.Meta == nil || res.Meta.Cache != spec.CacheHit {
				t.Fatalf("last good snapshot did not restore: meta = %+v", res.Meta)
			}
		})
	}
}

// The periodic writer snapshots on its ticker without any shutdown.
func TestSnapshotPeriodicWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	s := New(quietConfig(Config{SnapshotPath: path, SnapshotInterval: 20 * time.Millisecond}))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, l) }()
	url := "http://" + l.Addr().String()
	if resp, body := postJSON(t, url+"/v1/analyze", linearSpec(5)); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic writer produced no snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
