package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"fepia/internal/batch"
	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/obs"
	"fepia/internal/spec"
)

// maxWatchPoints bounds one watch session's trajectory. A session holds
// an admission slot for its whole run, so an unbounded trajectory would
// let one client pin a slot indefinitely; 4096 steps is hours of
// telemetry at any realistic cadence and still a bounded request.
const maxWatchPoints = 4096

// handleWatch serves GET|POST /v1/watch: one spec.WatchRequest in, a
// newline-delimited JSON stream out — one spec.WatchFrame per operating
// point, flushed as it is produced, then one spec.WatchSummary. Frames
// carry only the radii that CHANGED since the previous frame, computed
// by the engine's incremental session (batch.Watcher over the kernel
// delta path; see docs/PERFORMANCE.md, "Incremental sweep").
//
// Watch sessions are always served locally, never relayed to a ring
// owner: the session's value is the warm delta state accumulated across
// steps, which lives on exactly one node — forwarding each request would
// work but re-forwarding mid-stream on peer failure cannot, so the
// contract is session affinity to the node the client dialled. For the
// same reason there is no watch circuit breaker: a session is one
// long-lived request, not a stream of independent verdicts the breaker's
// failure window could meaningfully sample. The admission gate still
// applies — a session occupies one in-flight slot until it finishes.
//
// Failure discipline: errors before the first frame map onto the normal
// HTTP error contract (400/503/...). Once streaming has begun the status
// line is committed, so a mid-stream failure — deadline expiry on one
// step, an engine fault that exhausts its retries, the client vanishing
// — is reported in-band as the final WatchSummary's error/error_kind
// fields, with steps counting the frames already delivered (all of which
// remain trustworthy).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	psp := obs.StartSpan(r.Context(), "parse")
	body, ok := s.readBody(epWatch, w, r)
	if !ok {
		psp.End(errors.New("body rejected"))
		return
	}
	var req spec.WatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		verr := &spec.ValidationError{Msg: "malformed JSON: " + err.Error(), Err: err}
		psp.End(verr)
		s.fail(epWatch, w, r, verr)
		return
	}
	sys, err := spec.Build(req.System)
	if err == nil {
		err = validateTrajectory(req.Points, len(sys.Perturbation.Orig))
	}
	psp.End(err)
	if err != nil {
		s.fail(epWatch, w, r, err)
		return
	}

	release, ok := s.admit(epWatch, w, r)
	if !ok {
		return
	}
	defer release()

	watcher, err := batch.NewWatcher(
		batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
		batch.Options{Cache: s.cache, Core: sys.Options, Retry: s.retry, ShareBoundaries: true,
			Kernel: s.cfg.Kernel, Anytime: s.anytime(sys)})
	if err != nil {
		s.fail(epWatch, w, r, err)
		return
	}
	s.metrics.watchSessions.Inc()
	obs.TraceFrom(r.Context()).SetAttr("watch_points", strconv.Itoa(len(req.Points)))

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	s.serveHeaders(w, r, false)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	totalChanged := 0
	for i, pt := range req.Points {
		sp := obs.StartSpan(r.Context(), "watch_step")
		sp.Set("step", strconv.Itoa(i+1))
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		ctx = faults.With(ctx, s.cfg.Injector)
		rs := &batch.RequestStats{}
		ctx = batch.WithRequestStats(ctx, rs)
		res, err := watcher.Step(ctx, pt)
		cancel()
		if err != nil {
			sp.End(err)
			kind := errorKind(err)
			obs.TraceFrom(r.Context()).SetAttr("outcome", kind)
			obs.Logger(r.Context()).Warn("watch session aborted mid-stream",
				"step", i+1, "kind", kind, "error", err.Error())
			s.metrics.errs[epWatch].Inc()
			_ = enc.Encode(spec.WatchSummary{Done: true, Steps: i, TotalChanged: totalChanged,
				Error: err.Error(), ErrorKind: kind})
			flush(flusher)
			return
		}
		sp.Set("changed", strconv.Itoa(len(res.Changed)))
		sp.End(nil)
		s.metrics.watchSteps.Inc()
		s.metrics.watchChangedRadii.Add(uint64(len(res.Changed)))
		s.metrics.analyses.Inc()
		totalChanged += len(res.Changed)

		frame := spec.EncodeWatchFrame(res.Step, pt, res.Analysis, res.Changed)
		frame.Meta = s.meta(false, false, rs.Source())
		if anyLowerBound(res.Analysis) {
			frame.Meta.Anytime = true
			s.metrics.anytimePartial.Inc()
			obs.TraceFrom(r.Context()).SetAttr("anytime", "partial")
		}
		if err := enc.Encode(frame); err != nil {
			// The client went away; nothing left to tell it.
			obs.TraceFrom(r.Context()).SetAttr("outcome", "client_gone")
			return
		}
		flush(flusher)
	}
	_ = enc.Encode(spec.WatchSummary{Done: true, Steps: len(req.Points), TotalChanged: totalChanged})
	flush(flusher)
}

// validateTrajectory pre-checks the shape of every trajectory point so
// shape mistakes fail with 400 before the stream commits to 200.
// Non-finite coordinates are NOT rejected here: the engine's scalar path
// owns that verdict (mirroring one-shot analysis), and it surfaces
// mid-stream as an error summary frame.
func validateTrajectory(points [][]float64, dim int) error {
	if len(points) == 0 {
		return &spec.ValidationError{Path: "points", Msg: "empty trajectory"}
	}
	if len(points) > maxWatchPoints {
		return &spec.ValidationError{Path: "points",
			Msg: "trajectory of " + strconv.Itoa(len(points)) + " points exceeds the limit of " + strconv.Itoa(maxWatchPoints)}
	}
	for i, pt := range points {
		if len(pt) != dim {
			return &spec.ValidationError{Path: "points[" + strconv.Itoa(i) + "]",
				Msg: "point has " + strconv.Itoa(len(pt)) + " coordinates, want " + strconv.Itoa(dim)}
		}
	}
	return nil
}

// errorKind maps a step failure onto the error-kind vocabulary of the
// HTTP error contract, for in-band reporting after the status line has
// been committed (fail cannot run mid-stream).
func errorKind(err error) string {
	var ve *spec.ValidationError
	var se *core.SolveError
	switch {
	case errors.As(err, &ve):
		return "invalid_spec"
	case errors.Is(err, core.ErrNormUnsupported):
		return "unsupported"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "shutting_down"
	case errors.As(err, &se):
		return "solver_failure"
	}
	return "internal"
}

// flush pushes buffered frames to the client immediately; a nil flusher
// (a ResponseWriter without http.Flusher, as in some test harnesses)
// degrades to end-of-request delivery.
func flush(f http.Flusher) {
	if f != nil {
		f.Flush()
	}
}
