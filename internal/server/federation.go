// Federated observability: one node answers for the fleet. GET
// /v1/cluster/status fans out to every ring peer through the Router's
// breaker/retry machinery and merges the per-node health documents into
// one view; GET /metrics?federate=1 does the same with full metric
// registries (obs.RegistrySnapshot merge). Both degrade per peer — a
// dead node becomes an unhealthy entry with its error, never a 500 —
// and both refuse to recurse: the fan-out requests carry ?local=1 and
// the forwarded-from header, either of which pins the answer to the
// receiving node. See docs/OBSERVABILITY.md, "Federation".
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/faults"
	"fepia/internal/obs"
)

// NodeStatus is one node's entry in the /v1/cluster/status document.
// Unreachable peers carry Healthy=false and Error; every other field is
// the node's own self-report.
type NodeStatus struct {
	Node    string `json:"node"`
	Healthy bool   `json:"healthy"`
	Self    bool   `json:"self,omitempty"`
	Error   string `json:"error,omitempty"`

	UptimeSeconds int64   `json:"uptime_seconds,omitempty"`
	InFlight      int64   `json:"in_flight"`
	Requests      uint64  `json:"requests"`
	Analyses      uint64  `json:"analyses"`
	Errors        uint64  `json:"errors"`
	Rejected      uint64  `json:"rejected"`
	SlowRequests  uint64  `json:"slow_requests"`
	RingShare     float64 `json:"ring_share"`

	Cache *CacheStatus `json:"cache,omitempty"`
	// SnapshotAgeSeconds is the age of the last successful cache
	// snapshot write; -1 when persistence is off or nothing has been
	// written yet.
	SnapshotAgeSeconds int64 `json:"snapshot_age_seconds"`
	// Breakers maps each endpoint breaker to its state string (closed /
	// half_open / open / disabled).
	Breakers map[string]string `json:"breakers,omitempty"`
}

// CacheStatus is the radius-cache slice of a node status.
type CacheStatus struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	HitRate  float64 `json:"hit_rate"`
}

// ClusterStatus is the merged /v1/cluster/status document: every ring
// member's status (self first, then peers sorted by node ID) plus the
// healthy count, so "is the fleet ok" is one field, not a loop.
type ClusterStatus struct {
	Self         string       `json:"self,omitempty"`
	Nodes        []NodeStatus `json:"nodes"`
	NodesTotal   int          `json:"nodes_total"`
	NodesHealthy int          `json:"nodes_healthy"`
}

// localStatus assembles this node's self-report.
func (s *Server) localStatus() NodeStatus {
	m := &s.metrics
	cs := s.cache.Stats()
	st := NodeStatus{
		Node:          s.cfg.NodeID,
		Healthy:       true,
		Self:          true,
		UptimeSeconds: int64(time.Since(s.startTime).Seconds()),
		InFlight:      int64(m.inFlight.Value()),
		Requests:      m.requestsTotal(),
		Analyses:      m.analyses.Value(),
		Errors:        m.errsTotal(),
		Rejected:      m.rejected.Value(),
		RingShare:     1,
		Cache: &CacheStatus{
			Hits: cs.Hits, Misses: cs.Misses, Size: cs.Size,
			Capacity: cs.Capacity, HitRate: cs.HitRate(),
		},
		SnapshotAgeSeconds: -1,
		Breakers: map[string]string{
			epAnalyze: breakerState(s.analyzeBreaker),
			epBatch:   breakerState(s.batchBreaker),
		},
	}
	for _, ep := range endpoints {
		st.SlowRequests += m.slowReqs[ep].Value()
	}
	if last := s.snapLastUnix.Load(); last > 0 {
		st.SnapshotAgeSeconds = time.Now().Unix() - last
	}
	if s.router != nil {
		st.RingShare = s.router.Ring().Share(s.router.Self())
	}
	return st
}

// breakerState names a breaker's state for the status document.
func breakerState(b *faults.Breaker) string {
	if b == nil {
		return "disabled"
	}
	return b.Snapshot().State
}

// handleClusterStatus serves GET /v1/cluster/status. A solo node, a
// ?local=1 request, or a request already forwarded by a peer answers
// with its own status only; otherwise the node fans out to every ring
// peer concurrently and merges. Peer failures degrade per entry — the
// merged document is always 200 with every ring member present.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	self := s.localStatus()
	doc := ClusterStatus{Self: s.cfg.NodeID, Nodes: []NodeStatus{self}}
	fanOut := s.router != nil &&
		r.URL.Query().Get("local") != "1" &&
		r.Header.Get(cluster.ForwardedFromHeader) == ""
	if fanOut {
		doc.Nodes = append(doc.Nodes, s.peerStatuses(r.Context())...)
	}
	sort.SliceStable(doc.Nodes, func(i, j int) bool {
		if doc.Nodes[i].Self != doc.Nodes[j].Self {
			return doc.Nodes[i].Self
		}
		return doc.Nodes[i].Node < doc.Nodes[j].Node
	})
	doc.NodesTotal = len(doc.Nodes)
	for _, n := range doc.Nodes {
		if n.Healthy {
			doc.NodesHealthy++
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// peerStatuses fetches every peer's local status concurrently. Each
// fetch runs under the peer's breaker and retry policy; a failure of
// any shape — breaker open, retries exhausted, undecodable answer —
// becomes an unhealthy entry carrying the error.
func (s *Server) peerStatuses(ctx context.Context) []NodeStatus {
	ids := s.router.PeerIDs()
	out := make([]NodeStatus, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			out[i] = s.fetchPeerStatus(ctx, id)
		}(i, id)
	}
	wg.Wait()
	return out
}

// fetchPeerStatus asks one peer for its local status document.
func (s *Server) fetchPeerStatus(ctx context.Context, id string) NodeStatus {
	resp, err := s.router.Fetch(ctx, id, "/v1/cluster/status?local=1")
	if err != nil {
		return NodeStatus{Node: id, Healthy: false, Error: err.Error(), SnapshotAgeSeconds: -1}
	}
	var peerDoc ClusterStatus
	if resp.Status != http.StatusOK {
		return NodeStatus{Node: id, Healthy: false,
			Error: "peer answered status " + http.StatusText(resp.Status), SnapshotAgeSeconds: -1}
	}
	if err := json.Unmarshal(resp.Body, &peerDoc); err != nil || len(peerDoc.Nodes) == 0 {
		return NodeStatus{Node: id, Healthy: false,
			Error: "undecodable status document", SnapshotAgeSeconds: -1}
	}
	st := peerDoc.Nodes[0]
	st.Self = false
	st.Node = id
	return st
}

// handleClusterMetrics serves GET /v1/cluster/metrics: this node's
// registry snapshot as JSON — the federation wire a peer merges into
// its own registry for /metrics?federate=1.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.reg.Snapshot())
}

// federatedSnapshot merges every reachable peer's registry snapshot
// into this node's — counters and gauges sum to fleet totals,
// histograms merge bucket-wise — and stamps a
// fepiad_federation_peer_up gauge per peer so the fleet document shows
// who it covers. Peer failures degrade per series source: the local
// document always renders.
func (s *Server) federatedSnapshot(ctx context.Context) obs.RegistrySnapshot {
	snap := s.metrics.reg.Snapshot()
	ids := s.router.PeerIDs()
	sort.Strings(ids)
	peerSnaps := make([]*obs.RegistrySnapshot, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, err := s.router.Fetch(ctx, id, "/v1/cluster/metrics")
			if err != nil || resp.Status != http.StatusOK {
				return
			}
			var ps obs.RegistrySnapshot
			if json.Unmarshal(resp.Body, &ps) == nil {
				peerSnaps[i] = &ps
			}
		}(i, id)
	}
	wg.Wait()

	up := obs.FamilySnapshot{
		Name: "fepiad_federation_peer_up",
		Help: "Peers whose registry snapshot merged into this federated document (1 merged, 0 unreachable).",
		Type: "gauge",
	}
	for i, id := range ids {
		v := 0.0
		if peerSnaps[i] != nil {
			v = 1
		}
		up.Series = append(up.Series, obs.SeriesSnapshot{
			Labels: []obs.Label{obs.L("peer", id)}, Gauge: &v,
		})
	}
	snap.Merge(obs.RegistrySnapshot{Families: []obs.FamilySnapshot{up}})
	for _, ps := range peerSnaps {
		if ps != nil {
			snap.Merge(*ps)
		}
	}
	return snap
}
