package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/spec"
)

// clusterNode is one in-process fepiad of a test ring: its Server, its
// httptest listener, and a swappable handler so tests can make a live
// node misbehave (or heal) without rebinding its port.
type clusterNode struct {
	id      string
	url     string
	srv     *Server
	ts      *httptest.Server
	handler atomic.Value // http.Handler
}

// startCluster boots n fepiad nodes ("n0".."n{n-1}") that know each
// other through real HTTP listeners. Listeners start first (their URLs
// seed every node's peer list), then each Server is built and bound.
func startCluster(t *testing.T, n int, tweak func(i int, c *Config)) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		node := &clusterNode{id: fmt.Sprintf("n%d", i)}
		node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			node.handler.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(node.ts.Close)
		node.url = node.ts.URL
		nodes[i] = node
	}
	peers := make([]cluster.Peer, n)
	for i, node := range nodes {
		peers[i] = cluster.Peer{ID: node.id, URL: node.url}
	}
	for i, node := range nodes {
		cfg := quietConfig(Config{NodeID: node.id, Peers: peers, Degraded: true})
		if tweak != nil {
			tweak(i, &cfg)
		}
		node.srv = New(cfg)
		node.handler.Store(http.HandlerFunc(node.srv.Handler().ServeHTTP))
	}
	return nodes
}

// ownedDoc finds a linearSpec document whose ring owner is the given
// node, plus the doc's route key.
func ownedDoc(t *testing.T, nodes []*clusterNode, owner string) string {
	t.Helper()
	for k := 0; k < 200; k++ {
		doc := linearSpec(k)
		sys, err := spec.Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		if nodes[0].srv.router.Owner(sys.RouteKey) == owner {
			return doc
		}
	}
	t.Fatalf("no linearSpec document owned by %s in 200 tries", owner)
	return ""
}

// stripMeta clears the meta block of a result document for modulo-meta
// byte comparison.
func stripMeta(t *testing.T, body []byte) []byte {
	t.Helper()
	var res spec.ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("not a ResultJSON: %v: %s", err, body)
	}
	res.Meta = nil
	b, _ := json.Marshal(res)
	return b
}

// TestClusterForwardingDeterministicAndByteIdentical: every node derives
// the same ring, a non-owned request is forwarded to its owner, and the
// relayed response is byte-identical (modulo meta) to asking the owner
// directly.
func TestClusterForwardingDeterministicAndByteIdentical(t *testing.T) {
	nodes := startCluster(t, 3, nil)

	// Every node must agree on every owner (the ring is deterministic and
	// order-insensitive in the peer list).
	for k := 0; k < 50; k++ {
		sys, err := spec.Parse([]byte(linearSpec(k)))
		if err != nil {
			t.Fatal(err)
		}
		want := nodes[0].srv.router.Owner(sys.RouteKey)
		for _, node := range nodes[1:] {
			if got := node.srv.router.Owner(sys.RouteKey); got != want {
				t.Fatalf("doc %d: node %s says owner %q, node n0 says %q", k, node.id, got, want)
			}
		}
	}

	doc := ownedDoc(t, nodes, "n2")

	// Ask the owner directly: served locally, no forwarding markers.
	resp, direct := postJSON(t, nodes[2].url+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct: status %d: %s", resp.StatusCode, direct)
	}
	if resp.Header.Get(cluster.ForwardedHeader) != "" {
		t.Fatal("direct request to the owner was marked forwarded")
	}
	if got := resp.Header.Get(cluster.NodeHeader); got != "n2" {
		t.Fatalf("direct %s = %q, want n2", cluster.NodeHeader, got)
	}

	// Ask a non-owner: relayed to n2, marked forwarded, same bytes.
	resp, relayed := postJSON(t, nodes[0].url+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded: status %d: %s", resp.StatusCode, relayed)
	}
	if resp.Header.Get(cluster.ForwardedHeader) != "true" {
		t.Fatal("relayed response missing forwarded header")
	}
	if got := resp.Header.Get(cluster.NodeHeader); got != "n2" {
		t.Fatalf("relayed %s = %q, want the owner n2", cluster.NodeHeader, got)
	}
	var meta spec.ResultJSON
	if err := json.Unmarshal(relayed, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Meta == nil || meta.Meta.Node != "n2" || !meta.Meta.Forwarded {
		t.Fatalf("relayed meta = %+v, want node n2 forwarded", meta.Meta)
	}
	if !bytes.Equal(stripMeta(t, relayed), stripMeta(t, direct)) {
		t.Fatalf("forwarded response differs from direct (modulo meta):\n got %s\nwant %s", relayed, direct)
	}
	if st := nodes[0].srv.router.PeerStats("n2"); st.Forwards != 1 || st.ForwardHits != 1 {
		t.Fatalf("n0→n2 stats %+v, want 1 forward, 1 hit", st)
	}
}

// TestClusterBatchPartitioning: a batch posted to one node is split by
// ring owner, sub-batches resolve on their owning peers, and results
// come back in request order with per-result metas naming the node that
// actually solved each system.
func TestClusterBatchPartitioning(t *testing.T) {
	nodes := startCluster(t, 3, nil)

	const n = 12
	docs := make([]string, n)
	for k := range docs {
		docs[k] = linearSpec(k)
	}
	body := `{"systems": [` + strings.Join(docs, ",") + `]}`
	resp, data := postJSON(t, nodes[0].url+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br spec.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != n {
		t.Fatalf("%d results, want %d", len(br.Results), n)
	}
	remoteSolved := 0
	for i, res := range br.Results {
		sys, err := spec.Parse([]byte(docs[i]))
		if err != nil {
			t.Fatal(err)
		}
		owner := nodes[0].srv.router.Owner(sys.RouteKey)
		if res.Name != sys.Name {
			t.Fatalf("results[%d] = %q, want %q (request order violated)", i, res.Name, sys.Name)
		}
		if res.Meta == nil {
			t.Fatalf("results[%d] missing meta", i)
		}
		if res.Meta.Node != owner {
			t.Fatalf("results[%d] solved on %q, ring owner is %q", i, res.Meta.Node, owner)
		}
		if res.Meta.Forwarded != (owner != "n0") {
			t.Fatalf("results[%d] forwarded=%v on node %q", i, res.Meta.Forwarded, owner)
		}
		if owner != "n0" {
			remoteSolved++
		}
		want, _ := json.Marshal(libraryResult(t, docs[i]))
		res.Meta = nil
		got, _ := json.Marshal(res)
		if !bytes.Equal(got, want) {
			t.Fatalf("results[%d] differs from library path:\n got %s\nwant %s", i, got, want)
		}
	}
	if remoteSolved == 0 {
		t.Fatal("no system resolved on a peer: batch was not partitioned")
	}
	if br.Meta == nil || !br.Meta.Forwarded || br.Meta.Node != "n0" {
		t.Fatalf("batch top-level meta = %+v, want forwarded on n0", br.Meta)
	}
}

// TestClusterKilledNodeDegradesZeroDrop: killing a node mid-run drops
// zero requests — specs it owned are served locally by whoever received
// them, marked degraded, with the Warning header, and the survivor's
// per-peer breaker opens and is visible in metrics.
func TestClusterKilledNodeDegradesZeroDrop(t *testing.T) {
	nodes := startCluster(t, 3, func(i int, c *Config) {
		c.RetryMax = -1 // one attempt per forward: deterministic failure counting
		c.BreakerWindow = 2
		c.BreakerCooldown = time.Hour
	})
	doc := ownedDoc(t, nodes, "n2")

	// Healthy forward first: n0 relays to n2.
	resp, healthy := postJSON(t, nodes[0].url+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy forward: status %d: %s", resp.StatusCode, healthy)
	}

	nodes[2].ts.Close() // kill the owner mid-run

	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, nodes[0].url+"/v1/analyze", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d after owner death: status %d: %s (dropped request)", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Warning") == "" {
			t.Fatalf("request %d: degraded response missing Warning header", i)
		}
		var res spec.ResultJSON
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Meta == nil || !res.Meta.Degraded || res.Meta.Node != "n0" {
			t.Fatalf("request %d meta = %+v, want degraded on n0", i, res.Meta)
		}
		// The answer itself is the full fresh solve, identical to the
		// healthy forwarded one modulo meta.
		if !bytes.Equal(stripMeta(t, body), stripMeta(t, healthy)) {
			t.Fatalf("degraded local solve differs from healthy answer:\n got %s\nwant %s", body, healthy)
		}
	}

	st := nodes[0].srv.router.PeerStats("n2")
	if st.Failures < 2 {
		t.Fatalf("n0→n2 failures = %d, want ≥ 2", st.Failures)
	}
	if st.Breaker.State != "open" {
		t.Fatalf("n0→n2 breaker %+v after repeated forward failures, want open", st.Breaker)
	}
	if v := nodes[0].srv.metrics.clusterDegraded.Value(); v != 5 {
		t.Fatalf("fepiad_cluster_degraded_total = %d, want 5", v)
	}

	// A batch containing the dead node's systems also drops nothing.
	body := `{"systems": [` + doc + `,` + ownedDoc(t, nodes, "n0") + `]}`
	resp, data := postJSON(t, nodes[0].url+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after owner death: status %d: %s", resp.StatusCode, data)
	}
	var br spec.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Meta == nil || !br.Meta.Degraded {
		t.Fatalf("batch meta = %+v, want degraded", br.Meta)
	}
}

// TestClusterPeerBreakerRecovers: a peer that starts failing trips the
// per-peer breaker (requests keep flowing, served degraded locally);
// once the peer heals and the cooldown passes, the half-open probe
// closes the breaker and forwarding resumes.
func TestClusterPeerBreakerRecovers(t *testing.T) {
	nodes := startCluster(t, 2, func(i int, c *Config) {
		c.RetryMax = -1
		c.BreakerWindow = 2
		c.BreakerCooldown = 50 * time.Millisecond
	})
	doc := ownedDoc(t, nodes, "n1")

	// n1 misbehaves: every request 500s without touching its Server.
	var failing atomic.Bool
	failing.Store(true)
	real := nodes[1].srv.Handler()
	nodes[1].handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		real.ServeHTTP(w, r)
	}))

	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, nodes[0].url+"/v1/analyze", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d against failing peer: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if st := nodes[0].srv.router.PeerStats("n1"); st.Breaker.State != "open" {
		t.Fatalf("n0→n1 breaker %+v, want open", st.Breaker)
	}

	failing.Store(false)
	time.Sleep(80 * time.Millisecond)

	// The next forward is the half-open probe; it succeeds, closes the
	// breaker, and the response comes from n1 again.
	resp, body := postJSON(t, nodes[0].url+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe forward: status %d: %s", resp.StatusCode, body)
	}
	var res spec.ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Meta == nil || res.Meta.Node != "n1" || !res.Meta.Forwarded || res.Meta.Degraded {
		t.Fatalf("post-recovery meta = %+v, want forwarded to n1, not degraded", res.Meta)
	}
	if st := nodes[0].srv.router.PeerStats("n1"); st.Breaker.State != "closed" {
		t.Fatalf("n0→n1 breaker %+v after successful probe, want closed", st.Breaker)
	}
}

// TestClusterRingEndpoint: GET /v1/ring reports the membership with
// shares summing to 1 and marks the answering node.
func TestClusterRingEndpoint(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	resp, body := getBody(t, nodes[1].url+"/v1/ring")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Self     string `json:"self"`
		Replicas int    `json:"replicas"`
		Members  []struct {
			ID    string  `json:"id"`
			URL   string  `json:"url"`
			Self  bool    `json:"self"`
			Share float64 `json:"share"`
		} `json:"members"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Self != "n1" || doc.Replicas != cluster.DefaultReplicas || len(doc.Members) != 3 {
		t.Fatalf("ring doc %+v", doc)
	}
	var sum float64
	for _, m := range doc.Members {
		if m.Self != (m.ID == "n1") {
			t.Fatalf("member %s self marker wrong", m.ID)
		}
		sum += m.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
}

// getBody GETs a URL and returns response + body.
func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
