package server

import (
	"testing"
	"time"
)

// testClock is a manually advanced clock for driving breaker cooldowns
// without sleeping.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(window int, threshold float64, cooldown time.Duration) (*breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := newBreaker(breakerConfig{window: window, threshold: threshold, cooldown: cooldown, now: clk.now})
	return b, clk
}

func TestBreakerTripsOnlyOnFullWindow(t *testing.T) {
	b, _ := testBreaker(4, 0.5, time.Minute)
	// Three straight failures: window not yet full, must stay closed.
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.report(true)
	}
	if snap := b.snapshot(); snap.State != "closed" || snap.Failures != 3 || snap.Samples != 3 {
		t.Fatalf("before full window: %+v", snap)
	}
	// The fourth outcome fills the window; even though it is a success,
	// 3/4 ≥ 0.5 trips the breaker.
	b.report(false)
	if snap := b.snapshot(); snap.State != "open" || snap.Opens != 1 {
		t.Fatalf("full failing window did not open the breaker: %+v", snap)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerStaysClosedUnderThreshold(t *testing.T) {
	b, _ := testBreaker(4, 0.5, time.Minute)
	// Alternate success/failure: 1/4 and 2/4 windows briefly, but keep the
	// rate below threshold by reporting 1 failure per 4 outcomes.
	outcomes := []bool{true, false, false, false, true, false, false, false}
	for i, f := range outcomes {
		if !b.allow() {
			t.Fatalf("request %d rejected", i)
		}
		b.report(f)
	}
	if snap := b.snapshot(); snap.State != "closed" {
		t.Fatalf("25%% failure rate tripped a 50%% threshold: %+v", snap)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _ := testBreaker(4, 0.5, time.Minute)
	// An early failure scrolls out of the window as successes keep
	// arriving; the breaker must never open and the failure count must
	// return to zero once the failure has slid out.
	for _, f := range []bool{true, false, false, false, false} {
		b.report(f)
	}
	if snap := b.snapshot(); snap.State != "closed" || snap.Failures != 0 {
		t.Fatalf("old failures did not slide out: %+v", snap)
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b, clk := testBreaker(2, 0.5, time.Minute)
	b.report(true)
	b.report(true)
	if snap := b.snapshot(); snap.State != "open" {
		t.Fatalf("want open, got %+v", snap)
	}
	if b.allow() {
		t.Fatal("admitted during cooldown")
	}
	clk.advance(time.Minute)
	// Cooldown elapsed: exactly one probe is admitted.
	if !b.allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if snap := b.snapshot(); snap.State != "half_open" {
		t.Fatalf("want half_open, got %+v", snap)
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: straight back to open, new cooldown era.
	b.report(true)
	if snap := b.snapshot(); snap.State != "open" || snap.Opens != 2 {
		t.Fatalf("failed probe did not reopen: %+v", snap)
	}
	if b.allow() {
		t.Fatal("admitted right after reopening")
	}
	clk.advance(time.Minute)
	if !b.allow() {
		t.Fatal("second probe not admitted")
	}
	// Probe succeeds: closed with a clean window.
	b.report(false)
	snap := b.snapshot()
	if snap.State != "closed" || snap.Failures != 0 || snap.Samples != 0 {
		t.Fatalf("successful probe did not close and reset: %+v", snap)
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	b, clk := testBreaker(2, 0.5, time.Minute)
	b.report(true)
	b.report(true) // trips
	clk.advance(time.Minute)
	if !b.allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// The probe never reached the engine (shed at admission, or the
	// client went away): cancelProbe must return the slot with no
	// outcome counted, or the breaker wedges half-open forever.
	b.cancelProbe()
	if snap := b.snapshot(); snap.State != "half_open" {
		t.Fatalf("cancelProbe changed state: %+v", snap)
	}
	if !b.allow() {
		t.Fatal("probe slot not released by cancelProbe")
	}
	// The re-admitted probe still resolves the half-open era normally.
	b.report(false)
	if snap := b.snapshot(); snap.State != "closed" {
		t.Fatalf("probe after cancel did not close the breaker: %+v", snap)
	}
}

func TestBreakerCancelProbeNoopOutsideHalfOpen(t *testing.T) {
	b, _ := testBreaker(2, 0.5, time.Minute)
	// Closed: nothing to release.
	b.cancelProbe()
	if !b.allow() {
		t.Fatal("closed breaker rejected after cancelProbe")
	}
	b.report(true)
	b.report(true) // trips
	// Open, cooldown running: a straggler's cancel must not admit early.
	b.cancelProbe()
	if b.allow() {
		t.Fatal("cancelProbe while open admitted a request before cooldown")
	}
}

func TestBreakerDropsStragglersWhileOpen(t *testing.T) {
	b, _ := testBreaker(2, 0.5, time.Minute)
	b.report(true)
	b.report(true) // trips
	// A request admitted before the trip reports late: must not disturb
	// the open state or the next closed era's window.
	b.report(false)
	b.report(true)
	if snap := b.snapshot(); snap.State != "open" || snap.Samples != 0 || snap.Failures != 0 {
		t.Fatalf("straggler reports disturbed the open breaker: %+v", snap)
	}
}
