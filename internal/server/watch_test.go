package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fepia/internal/faults"
	"fepia/internal/spec"
)

// watchSpec is the system every watch test streams: three machines'
// finishing times as 0/1 indicator features over a 3-dimensional ETC
// perturbation — all kernel-eligible, so the delta path carries them.
const watchSpec = `{
  "name": "watch-farm",
  "perturbation": {"name": "C", "orig": [6, 4, 8], "units": "s"},
  "features": [
    {"name": "finish(m0)", "max": 14, "impact": {"type": "linear", "coeffs": [1, 1, 0]}},
    {"name": "finish(m1)", "max": 13, "impact": {"type": "linear", "coeffs": [0, 0, 1]}},
    {"name": "finish(m2)", "max": 20, "impact": {"type": "linear", "coeffs": [1, 0, 1]}}
  ]
}`

// watchBody assembles a WatchRequest document over watchSpec.
func watchBody(t *testing.T, points [][]float64) string {
	t.Helper()
	var f spec.File
	if err := json.Unmarshal([]byte(watchSpec), &f); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(spec.WatchRequest{System: f, Points: points})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// decodeStream splits an ndjson watch response into its frames and the
// mandatory trailing summary.
func decodeStream(t *testing.T, data []byte) ([]spec.WatchFrame, spec.WatchSummary) {
	t.Helper()
	var frames []spec.WatchFrame
	var summary spec.WatchSummary
	sawSummary := false
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("stream continues past the summary frame: %s", line)
		}
		// The summary is the only frame with "done"; probe for it first.
		var probe struct {
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line not JSON: %v (%s)", err, line)
		}
		if probe.Done {
			if err := json.Unmarshal(line, &summary); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var fr spec.WatchFrame
		if err := json.Unmarshal(line, &fr); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	if !sawSummary {
		t.Fatalf("stream ended without a summary frame:\n%s", data)
	}
	return frames, summary
}

// analyzeAt fetches the one-shot /v1/analyze result for watchSpec with
// its operating point replaced by pt.
func analyzeAt(t *testing.T, url string, pt []float64) spec.ResultJSON {
	t.Helper()
	var f spec.File
	if err := json.Unmarshal([]byte(watchSpec), &f); err != nil {
		t.Fatal(err)
	}
	f.Perturbation.Orig = pt
	doc, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, url+"/v1/analyze", string(doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d: %s", resp.StatusCode, body)
	}
	var res spec.ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWatchStream drives a session through a no-op step and a
// single-coordinate move, with the kernel on and off, and checks every
// frame against the one-shot /v1/analyze answer at the same point.
func TestWatchStream(t *testing.T) {
	for _, kernelOn := range []bool{true, false} {
		t.Run(fmt.Sprintf("kernel=%v", kernelOn), func(t *testing.T) {
			ts := httptest.NewServer(New(quietConfig(Config{Kernel: kernelOn})).Handler())
			defer ts.Close()

			points := [][]float64{
				{6, 4, 8},
				{6, 4, 8},   // no-op: nothing changes
				{6, 4, 9},   // one coordinate: finish(m1) and finish(m2) move
				{5, 4.5, 9}, // two coordinates
			}
			resp, body := postJSON(t, ts.URL+"/v1/watch", watchBody(t, points))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
			}
			frames, summary := decodeStream(t, body)
			if len(frames) != len(points) {
				t.Fatalf("got %d frames, want %d", len(frames), len(points))
			}
			if !summary.Done || summary.Steps != len(points) || summary.Error != "" {
				t.Fatalf("summary = %+v, want done with %d clean steps", summary, len(points))
			}

			// Frame-shape assertions: first frame reports every feature,
			// the no-op step none, the single-coordinate step exactly the
			// features whose indicator rows touch coordinate 2.
			if frames[0].ChangedCount != 3 {
				t.Fatalf("first frame changed_count = %d, want all 3", frames[0].ChangedCount)
			}
			if frames[1].ChangedCount != 0 {
				t.Fatalf("no-op frame changed_count = %d, want 0", frames[1].ChangedCount)
			}
			if got := changedNames(frames[2]); !strings.Contains(got, "finish(m1)") || strings.Contains(got, "finish(m0)") {
				t.Fatalf("single-coordinate frame changed %q, want finish(m1)/finish(m2) only", got)
			}
			wantTotal := 0
			for _, fr := range frames {
				if fr.ChangedCount != len(fr.Changed) {
					t.Fatalf("frame %d changed_count %d != len(changed) %d", fr.Step, fr.ChangedCount, len(fr.Changed))
				}
				wantTotal += fr.ChangedCount
				if fr.Meta == nil {
					t.Fatalf("frame %d carries no meta block", fr.Step)
				}
			}
			if summary.TotalChanged != wantTotal {
				t.Fatalf("summary total_changed = %d, want %d", summary.TotalChanged, wantTotal)
			}

			// Every frame must agree with the one-shot endpoint at the same
			// point: robustness, critical feature, and each changed radius
			// byte-identical after JSON round-trip.
			for i, fr := range frames {
				want := analyzeAt(t, ts.URL, points[i])
				if math.Float64bits(fr.Robustness) != math.Float64bits(want.Robustness) || fr.Critical != want.Critical {
					t.Fatalf("frame %d (ρ=%v, critical=%q) differs from analyze (ρ=%v, critical=%q)",
						fr.Step, fr.Robustness, fr.Critical, want.Robustness, want.Critical)
				}
				byName := map[string]spec.RadiusJSON{}
				for _, r := range want.Radii {
					byName[r.Feature] = r
				}
				for _, r := range fr.Changed {
					w, ok := byName[r.Feature]
					if !ok {
						t.Fatalf("frame %d changed unknown feature %q", fr.Step, r.Feature)
					}
					gb, _ := json.Marshal(r)
					wb, _ := json.Marshal(w)
					if !bytes.Equal(gb, wb) {
						t.Fatalf("frame %d radius differs from analyze:\n got %s\nwant %s", fr.Step, gb, wb)
					}
				}
			}
		})
	}
}

func changedNames(fr spec.WatchFrame) string {
	var names []string
	for _, r := range fr.Changed {
		names = append(names, r.Feature)
	}
	return strings.Join(names, ",")
}

// TestWatchValidation pins the pre-stream failure contract: shape
// mistakes are plain 400s with the offending field path, before any
// frame is written.
func TestWatchValidation(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	cases := []struct {
		name, body, wantPath string
	}{
		{"malformed", "{not json", ""},
		{"empty trajectory", watchBody(t, nil), "points"},
		{"bad dimension", watchBody(t, [][]float64{{6, 4, 8}, {1, 2}}), "points[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/watch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			e := decodeError(t, body)
			if e.Kind != "invalid_spec" || e.Path != tc.wantPath {
				t.Fatalf("error = %+v, want kind invalid_spec path %q", e, tc.wantPath)
			}
		})
	}
}

// TestWatchMidStreamError: a session whose second step fails (an
// injected solve fault with retrying disabled) keeps its 200 status
// (already committed), delivers the clean first frame, and reports the
// failure in-band on the summary frame. The injector also proves the
// fault-injected-session rule: every step routes through the scalar
// path, so injection points actually fire mid-session.
func TestWatchMidStreamError(t *testing.T) {
	// The spec has 3 features; occurrence 4 is the first solve of step 2.
	script := faults.NewScript().At(faults.Solve, 4, faults.KindError)
	ts := httptest.NewServer(New(quietConfig(Config{Kernel: true, RetryMax: -1, Injector: script})).Handler())
	defer ts.Close()

	points := [][]float64{
		{6, 4, 8},
		{6, 4, 9},  // first solve here draws the injected fault
		{5, 4, 10}, // never reached
	}
	resp, data := postJSON(t, ts.URL+"/v1/watch", watchBody(t, points))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	frames, summary := decodeStream(t, data)
	if len(frames) != 1 {
		t.Fatalf("got %d frames before the failure, want 1", len(frames))
	}
	if !summary.Done || summary.Steps != 1 || summary.Error == "" {
		t.Fatalf("summary = %+v, want done=true steps=1 with an error", summary)
	}
}

// TestWatchMetrics: a finished session shows up on both exposition
// surfaces — fepiad_watch_* on /metrics and fepiad.watch on /debug/vars —
// with steps and changed-radii counts matching the stream.
func TestWatchMetrics(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{Kernel: true})).Handler())
	defer ts.Close()

	points := [][]float64{{6, 4, 8}, {6, 4, 9}}
	resp, data := postJSON(t, ts.URL+"/v1/watch", watchBody(t, points))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	frames, summary := decodeStream(t, data)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prom := string(raw)
	for _, want := range []string{
		"fepiad_watch_sessions_total 1",
		"fepiad_watch_steps_total 2",
		fmt.Sprintf("fepiad_watch_changed_radii_total %d", summary.TotalChanged),
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	vresp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(vresp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	var wv struct {
		Sessions     int `json:"sessions"`
		Steps        int `json:"steps"`
		ChangedRadii int `json:"changed_radii"`
	}
	if err := json.Unmarshal(vars["fepiad.watch"], &wv); err != nil {
		t.Fatalf("fepiad.watch missing from /debug/vars: %v", err)
	}
	if wv.Sessions != 1 || wv.Steps != 2 || wv.ChangedRadii != summary.TotalChanged {
		t.Fatalf("fepiad.watch = %+v, want {1 2 %d}", wv, summary.TotalChanged)
	}
}

// TestWatchPointCap: a trajectory past maxWatchPoints is rejected up
// front rather than holding an admission slot for an unbounded stream.
func TestWatchPointCap(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	points := make([][]float64, maxWatchPoints+1)
	for i := range points {
		points[i] = []float64{6, 4, 8}
	}
	resp, body := postJSON(t, ts.URL+"/v1/watch", watchBody(t, points))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Path != "points" {
		t.Fatalf("error = %+v, want path points", e)
	}
}
