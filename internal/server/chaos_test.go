package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fepia/internal/faults"
	"fepia/internal/spec"
)

// gatedInjector wraps an injector behind an on/off switch so a test can
// warm the server's radius cache fault-free, then turn the weather bad.
type gatedInjector struct {
	enabled atomic.Bool
	inner   faults.Injector
}

func (g *gatedInjector) Inject(ctx context.Context, p faults.Point) error {
	if !g.enabled.Load() {
		return nil
	}
	return g.inner.Inject(ctx, p)
}

// engineKiller returns an injector that fails every cache_get — the first
// engine touch of each feature solve — so analyses fail while the cache
// content itself stays intact for degraded serving.
func engineKiller() *gatedInjector {
	return &gatedInjector{inner: faults.NewSeeded(1, faults.Config{
		Rates: map[faults.Point]map[faults.Kind]float64{
			faults.CacheGet: {faults.KindError: 1.0},
		},
	})}
}

// swapInjector delegates to whatever injector is currently installed;
// nil means healthy. Tests use it to change the weather between phases
// of one breaker story.
type swapInjector struct {
	mu    sync.Mutex
	inner faults.Injector
}

func (s *swapInjector) set(inj faults.Injector) {
	s.mu.Lock()
	s.inner = inj
	s.mu.Unlock()
}

func (s *swapInjector) Inject(ctx context.Context, p faults.Point) error {
	s.mu.Lock()
	inner := s.inner
	s.mu.Unlock()
	if inner == nil {
		return nil
	}
	return inner.Inject(ctx, p)
}

// tripAnalyzeBreaker drives two engine failures through /v1/analyze so a
// window-2 breaker opens.
func tripAnalyzeBreaker(t *testing.T, url string, sw *swapInjector) {
	t.Helper()
	kill := engineKiller()
	kill.enabled.Store(true)
	sw.set(kill)
	postJSON(t, url+"/v1/analyze", webFarm)
	postJSON(t, url+"/v1/analyze", webFarm)
	if state := breakerStateVar(t, getVars(t, url), "fepiad.breaker.analyze"); state != "open" {
		t.Fatalf("breaker state = %q after a full failing window, want open", state)
	}
}

// getVars fetches and decodes /debug/vars.
func getVars(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	return vars
}

func breakerStateVar(t *testing.T, vars map[string]any, key string) string {
	t.Helper()
	b, ok := vars[key].(map[string]any)
	if !ok {
		t.Fatalf("%s missing from /debug/vars", key)
	}
	state, _ := b["state"].(string)
	return state
}

// TestChaosDegradedServingAndBreakerOpen drives the full degraded-mode
// story on /v1/analyze: a healthy warm-up, an engine failure answered
// byte-identically from the cache with the degraded marker, the breaker
// tripping into open — observable on /debug/vars — and, while open, a
// cache-missing document shedding with 503 "circuit_open" + Retry-After.
func TestChaosDegradedServingAndBreakerOpen(t *testing.T) {
	inj := engineKiller()
	s := New(quietConfig(Config{
		RetryMax:        -1, // injected faults fire on every attempt; retrying is noise here
		BreakerWindow:   2,
		BreakerCooldown: time.Hour, // no recovery inside this test
		Degraded:        true,
		Injector:        inj,
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Healthy warm-up fills the radius cache and records the baseline.
	// The document is all-linear: affine impacts are value-keyed in the
	// radius cache, so a later request parsing the same JSON reaches the
	// same entries. (Pointer-keyed impacts — "terms", "func" — cannot be
	// served degraded across requests by design.)
	doc := linearSpec(1)
	resp, baselineBody := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("warm-up: status %d, Warning %q", resp.StatusCode, resp.Header.Get("Warning"))
	}
	var baseline spec.ResultJSON
	if err := json.Unmarshal(baselineBody, &baseline); err != nil {
		t.Fatal(err)
	}
	baseline.Meta = nil

	inj.enabled.Store(true)

	// Two engine failures: both answered degraded from the cache, and with
	// window 2 the second one trips the breaker.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if w := resp.Header.Get("Warning"); w == "" {
			t.Fatalf("degraded request %d: no Warning header", i)
		}
		var got spec.ResultJSON
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Meta == nil || !got.Meta.Degraded {
			t.Fatalf("degraded request %d: meta.degraded missing: %s", i, body)
		}
		if got.Meta.Cache != spec.CacheHit {
			t.Fatalf("degraded request %d: meta.cache = %q, want %q", i, got.Meta.Cache, spec.CacheHit)
		}
		if got.Degraded {
			t.Fatalf("degraded request %d: deprecated top-level marker emitted without -compat-v1-degraded: %s", i, body)
		}
		// Byte-identical modulo the meta block: clearing it must reproduce
		// the fault-free document exactly.
		got.Meta = nil
		if !reflect.DeepEqual(got, baseline) {
			t.Fatalf("degraded result differs from fault-free baseline:\n got %+v\nwant %+v", got, baseline)
		}
	}

	vars := getVars(t, ts.URL)
	if state := breakerStateVar(t, vars, "fepiad.breaker.analyze"); state != "open" {
		t.Fatalf("breaker state = %q after a full failing window, want open", state)
	}
	if got := vars["fepiad.degraded"].(float64); got != 2 {
		t.Fatalf("fepiad.degraded = %v, want 2", got)
	}

	// Open breaker, cached document: still served degraded — the engine is
	// never touched (the injector would fail it anyway).
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") == "" {
		t.Fatalf("open-breaker cached request: status %d: %s", resp.StatusCode, body)
	}

	// Open breaker, never-seen document: true cache miss → 503 with the
	// circuit_open kind and a Retry-After hint.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", linearSpec(99))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker cache miss: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if e := decodeError(t, body); e.Kind != "circuit_open" {
		t.Fatalf("error kind = %q, want circuit_open", e.Kind)
	}
}

// TestChaosBreakerRecovers closes the loop: after the cooldown a healthy
// probe flips the breaker half-open → closed, visible on /debug/vars.
func TestChaosBreakerRecovers(t *testing.T) {
	inj := engineKiller()
	s := New(quietConfig(Config{
		RetryMax:        -1,
		BreakerWindow:   2,
		BreakerCooldown: 50 * time.Millisecond,
		Degraded:        true,
		Injector:        inj,
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/analyze", webFarm) // warm
	inj.enabled.Store(true)
	postJSON(t, ts.URL+"/v1/analyze", webFarm)
	postJSON(t, ts.URL+"/v1/analyze", webFarm) // trips (window 2)
	if state := breakerStateVar(t, getVars(t, ts.URL), "fepiad.breaker.analyze"); state != "open" {
		t.Fatalf("breaker state = %q, want open", state)
	}

	// Engine heals; after the cooldown the next request is the half-open
	// probe, succeeds, and closes the breaker.
	inj.enabled.Store(false)
	time.Sleep(80 * time.Millisecond)
	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("probe after cooldown: status %d, Warning %q: %s", resp.StatusCode, resp.Header.Get("Warning"), body)
	}
	vars := getVars(t, ts.URL)
	if state := breakerStateVar(t, vars, "fepiad.breaker.analyze"); state != "closed" {
		t.Fatalf("breaker state = %q after healthy probe, want closed", state)
	}
	b := vars["fepiad.breaker.analyze"].(map[string]any)
	if opens := b["opens"].(float64); opens != 1 {
		t.Fatalf("opens = %v, want exactly 1 trip", opens)
	}
}

// TestChaosTransientSolveRetried: with the default retry policy a
// transient injected solve fault is retried away — the response is
// byte-identical to the fault-free one and the retry shows on
// /debug/vars.
func TestChaosTransientSolveRetried(t *testing.T) {
	script := faults.NewScript().At(faults.Solve, 1, faults.KindError)
	s := New(quietConfig(Config{Injector: script})) // default RetryMax = 3
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Warning") != "" {
		t.Fatal("retried request must not be marked degraded")
	}
	var got spec.ResultJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	got.Meta = nil
	want := libraryResult(t, webFarm)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retried result differs from library path:\n got %+v\nwant %+v", got, want)
	}
	if retries := getVars(t, ts.URL)["fepiad.retries"].(float64); retries < 1 {
		t.Fatalf("fepiad.retries = %v, want ≥ 1", retries)
	}
}

// TestChaosAdmissionFaultSheds: an injected admission fault sheds the
// request exactly like saturation — 503, "overloaded", Retry-After — and
// the next request is unaffected.
func TestChaosAdmissionFaultSheds(t *testing.T) {
	script := faults.NewScript().At(faults.Admission, 1, faults.KindError)
	s := New(quietConfig(Config{Injector: script}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if e := decodeError(t, body); e.Kind != "overloaded" {
		t.Fatalf("error kind = %q, want overloaded", e.Kind)
	}
	resp, body = postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after admission fault: status %d: %s", resp.StatusCode, body)
	}
}

// TestChaosProbeShedAtAdmissionDoesNotWedgeBreaker: a half-open probe
// shed before it reaches the engine (here by an injected admission
// fault) must return its probe slot; otherwise the breaker would reject
// every future request with no path back to closed short of a restart.
func TestChaosProbeShedAtAdmissionDoesNotWedgeBreaker(t *testing.T) {
	sw := &swapInjector{}
	s := New(quietConfig(Config{
		RetryMax:        -1,
		BreakerWindow:   2,
		BreakerCooldown: 50 * time.Millisecond,
		Injector:        sw,
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tripAnalyzeBreaker(t, ts.URL, sw)

	// Cooldown elapses; the next request becomes the half-open probe but
	// is shed at admission before touching the engine.
	time.Sleep(80 * time.Millisecond)
	sw.set(faults.NewScript().At(faults.Admission, 1, faults.KindError))
	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed probe: status %d, want 503: %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "overloaded" {
		t.Fatalf("shed probe: kind %q, want overloaded", e.Kind)
	}

	// The slot came back: the engine is healthy again, so the very next
	// request is admitted as a fresh probe and closes the breaker.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after shed probe: status %d (breaker wedged half-open): %s", resp.StatusCode, body)
	}
	if state := breakerStateVar(t, getVars(t, ts.URL), "fepiad.breaker.analyze"); state != "closed" {
		t.Fatalf("breaker state = %q after healthy probe, want closed", state)
	}
}

// TestChaosCancelledProbeDoesNotCloseBreaker: a probe whose solve is
// cancelled client-side yields no engine verdict — the breaker must stay
// half-open (slot released, outcome uncounted) rather than close on
// fabricated success, and the next healthy probe closes it for real.
func TestChaosCancelledProbeDoesNotCloseBreaker(t *testing.T) {
	sw := &swapInjector{}
	s := New(quietConfig(Config{
		RetryMax:        -1,
		BreakerWindow:   2,
		BreakerCooldown: 50 * time.Millisecond,
		Injector:        sw,
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tripAnalyzeBreaker(t, ts.URL, sw)

	// Cooldown elapses; the probe's solve is cancelled (the injected
	// cancel fault wraps context.Canceled, exactly like a client gone
	// away mid-solve).
	time.Sleep(80 * time.Millisecond)
	sw.set(faults.NewScript().At(faults.Solve, 1, faults.KindCancel))
	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cancelled probe: status %d, want 503: %s", resp.StatusCode, body)
	}
	if state := breakerStateVar(t, getVars(t, ts.URL), "fepiad.breaker.analyze"); state != "half_open" {
		t.Fatalf("breaker state = %q after cancelled probe, want half_open (no fabricated success)", state)
	}

	// Only a real engine success closes it.
	sw.set(nil)
	resp, body = postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy probe: status %d: %s", resp.StatusCode, body)
	}
	if state := breakerStateVar(t, getVars(t, ts.URL), "fepiad.breaker.analyze"); state != "closed" {
		t.Fatalf("breaker state = %q after healthy probe, want closed", state)
	}
}

// TestChaosBatchDegraded: the same degraded contract on /v1/batch — a
// warm cache answers a failing batch with per-result degraded markers, in
// request order, byte-identical modulo the markers.
func TestChaosBatchDegraded(t *testing.T) {
	inj := engineKiller()
	s := New(quietConfig(Config{
		RetryMax: -1,
		Degraded: true,
		Injector: inj,
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batchBody := `{"systems": [` + linearSpec(1) + `,` + linearSpec(2) + `]}`
	resp, baselineBody := postJSON(t, ts.URL+"/v1/batch", batchBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", resp.StatusCode, baselineBody)
	}
	var baseline spec.BatchResponse
	if err := json.Unmarshal(baselineBody, &baseline); err != nil {
		t.Fatal(err)
	}
	baseline.Meta = nil
	for i := range baseline.Results {
		baseline.Results[i].Meta = nil
	}

	inj.enabled.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/batch", batchBody)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") == "" {
		t.Fatalf("degraded batch: status %d, Warning %q: %s", resp.StatusCode, resp.Header.Get("Warning"), body)
	}
	var got spec.BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(baseline.Results) {
		t.Fatalf("%d results, want %d", len(got.Results), len(baseline.Results))
	}
	if got.Meta == nil || !got.Meta.Degraded || got.Meta.Cache != spec.CacheHit {
		t.Fatalf("degraded batch top-level meta = %+v, want degraded with cache %q", got.Meta, spec.CacheHit)
	}
	got.Meta = nil
	for i := range got.Results {
		if got.Results[i].Meta == nil || !got.Results[i].Meta.Degraded {
			t.Fatalf("results[%d] missing meta.degraded marker", i)
		}
		if got.Results[i].Degraded {
			t.Fatalf("results[%d] emitted deprecated top-level marker without -compat-v1-degraded", i)
		}
		got.Results[i].Meta = nil
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Fatalf("degraded batch differs from baseline:\n got %+v\nwant %+v", got, baseline)
	}

	// A batch containing an uncached system cannot be assembled: 503 with
	// the degraded kind (batch breaker still closed at window default 20).
	resp, body = postJSON(t, ts.URL+"/v1/batch", `{"systems": [`+linearSpec(1)+`,`+linearSpec(42)+`]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("partial-cache batch: status %d: %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "degraded" {
		t.Fatalf("error kind = %q, want degraded", e.Kind)
	}
}

// TestChaosCompatV1DegradedMarker: the deprecated top-level "degraded"
// marker is emitted only behind -compat-v1-degraded, and always
// alongside the authoritative meta.degraded (docs/SERVICE.md).
func TestChaosCompatV1DegradedMarker(t *testing.T) {
	inj := engineKiller()
	s := New(quietConfig(Config{
		RetryMax:         -1,
		Degraded:         true,
		CompatV1Degraded: true,
		Injector:         inj,
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := linearSpec(1)
	postJSON(t, ts.URL+"/v1/analyze", doc) // warm the cache
	inj.enabled.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got spec.ResultJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Meta == nil || !got.Meta.Degraded {
		t.Fatalf("meta.degraded missing: %s", body)
	}
	if !got.Degraded {
		t.Fatalf("compat mode did not emit the deprecated top-level marker: %s", body)
	}
}
