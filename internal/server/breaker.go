package server

import (
	"sync"
	"time"
)

// Circuit-breaker defaults applied by Config.withDefaults.
const (
	DefaultBreakerWindow    = 20
	DefaultBreakerThreshold = 0.5
	DefaultBreakerCooldown  = 5 * time.Second
	// defaultHalfOpenProbes is how many consecutive successful probes
	// close a half-open breaker.
	defaultHalfOpenProbes = 1
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state as exported on /debug/vars.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breakerConfig tunes one endpoint's breaker.
type breakerConfig struct {
	// window is the sliding outcome window; the breaker trips only once
	// the window is full.
	window int
	// threshold is the failure rate in [0, 1] that opens the breaker.
	threshold float64
	// cooldown is how long an open breaker rejects before probing.
	cooldown time.Duration
	// probes is how many consecutive half-open successes close it.
	probes int
	// now is the clock, stubbed by tests; nil selects time.Now.
	now func() time.Time
}

// breaker is a per-endpoint circuit breaker over a sliding failure-rate
// window. Engine outcomes are reported with report; allow gates each
// request. Closed: everything passes and outcomes fill the ring. Open:
// everything is rejected until cooldown elapses. Half-open: one probe at
// a time reaches the engine; a probe failure reopens, enough successes
// close and reset the window. Safe for concurrent use.
type breaker struct {
	cfg breakerConfig

	mu            sync.Mutex
	state         breakerState
	ring          []bool // true = failure
	ringN         int    // outcomes recorded, ≤ len(ring)
	ringI         int    // next write position
	fails         int    // failures currently in the ring
	openedAt      time.Time
	probeOK       int  // consecutive successful probes while half-open
	probeInFlight bool // a half-open probe is at the engine
	opens         uint64
}

// newBreaker builds a breaker; cfg must be pre-defaulted.
func newBreaker(cfg breakerConfig) *breaker {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.probes <= 0 {
		cfg.probes = defaultHalfOpenProbes
	}
	return &breaker{cfg: cfg, ring: make([]bool, cfg.window)}
}

// allow reports whether a request may reach the engine. In the open
// state it flips to half-open once the cooldown has elapsed and admits a
// single probe; callers that are let through must call report with the
// engine outcome.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probeOK = 0
		b.probeInFlight = true
		return true
	default: // half-open: one probe at a time
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
}

// report records one engine outcome. In the closed state it advances the
// sliding window and trips to open when the full window's failure rate
// reaches the threshold. In the half-open state it resolves the probe:
// failure reopens immediately, success counts toward closing. Reports
// landing while open (stragglers admitted before the trip) are dropped.
func (b *breaker) report(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if b.ringN == len(b.ring) {
			if b.ring[b.ringI] {
				b.fails--
			}
		} else {
			b.ringN++
		}
		b.ring[b.ringI] = failure
		if failure {
			b.fails++
		}
		b.ringI = (b.ringI + 1) % len(b.ring)
		if b.ringN == len(b.ring) && float64(b.fails) >= b.cfg.threshold*float64(len(b.ring)) {
			b.trip()
		}
	case breakerHalfOpen:
		b.probeInFlight = false
		if failure {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.probes {
			b.state = breakerClosed
			b.reset()
		}
	}
}

// cancelProbe returns a half-open probe slot without counting an
// outcome: the request allow() admitted never produced an engine
// verdict (it was shed at admission, or failed for a client-side
// reason). A no-op in every other state, so stragglers from a previous
// era cannot disturb a later probe.
func (b *breaker) cancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probeInFlight = false
	}
}

// trip opens the breaker and clears the window for the next closed era.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.cfg.now()
	b.opens++
	b.probeInFlight = false
	b.reset()
}

// reset clears the sliding window (caller holds the lock).
func (b *breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringN, b.ringI, b.fails = 0, 0, 0
}

// breakerSnapshot is the /debug/vars view of one breaker.
type breakerSnapshot struct {
	State    string `json:"state"`
	Failures int    `json:"failures"`
	Samples  int    `json:"samples"`
	Window   int    `json:"window"`
	Opens    uint64 `json:"opens"`
}

// snapshot returns a consistent point-in-time view.
func (b *breaker) snapshot() breakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerSnapshot{
		State:    b.state.String(),
		Failures: b.fails,
		Samples:  b.ringN,
		Window:   len(b.ring),
		Opens:    b.opens,
	}
}
