package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds, in milliseconds, of the request
// latency histogram exported on /debug/vars (the last bucket is +Inf).
var latencyBuckets = [...]float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metrics is the server's operational counter set. Everything is atomic so
// handlers update it without locking; /debug/vars reads a point-in-time
// snapshot.
type metrics struct {
	// requests counts every request to a /v1/ endpoint.
	requests atomic.Uint64
	// analyses counts systems analysed (a batch of n counts n).
	analyses atomic.Uint64
	// rejected counts requests turned away by the admission gate (503).
	rejected atomic.Uint64
	// errs counts non-2xx responses on /v1/ endpoints.
	errs atomic.Uint64
	// inFlight gauges requests currently holding an admission slot.
	inFlight atomic.Int64
	// retries counts per-feature solve re-attempts by the transient-
	// failure retry policy.
	retries atomic.Uint64
	// degraded counts responses served from the radius cache in degraded
	// mode (breaker open or engine failure).
	degraded atomic.Uint64
	// latency histograms /v1/ request durations: latency[i] counts
	// requests that finished within latencyBuckets[i] ms; the final slot
	// is the +Inf overflow. latencyCount/latencySumMS aggregate totals.
	latency      [len(latencyBuckets) + 1]atomic.Uint64
	latencyCount atomic.Uint64
	latencySumMS atomic.Uint64
}

// observe records one finished /v1/ request.
func (m *metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBuckets[:], ms)
	m.latency[i].Add(1)
	m.latencyCount.Add(1)
	m.latencySumMS.Add(uint64(ms + 0.5))
}

// writeVars emits the expvar-compatible JSON document served on
// /debug/vars: every variable of the process-global expvar registry
// (cmdline, memstats, …) plus the server-local fepiad.* counters. The
// server publishes its own document instead of expvar.Publish because
// expvar's registry is process-global and would collide across the many
// Server instances the test suite creates.
func (s *Server) writeVars(w io.Writer) {
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value)
	})
	m := &s.metrics
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.requests", m.requests.Load())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.analyses", m.analyses.Load())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.rejected", m.rejected.Load())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.errors", m.errs.Load())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.in_flight", m.inFlight.Load())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.retries", m.retries.Load())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.degraded", m.degraded.Load())
	writeBreakerVar(w, "fepiad.breaker.analyze", s.analyzeBreaker)
	writeBreakerVar(w, "fepiad.breaker.batch", s.batchBreaker)

	cs := s.cache.Stats()
	fmt.Fprintf(w, "%q: {\"hits\": %d, \"misses\": %d, \"size\": %d, \"capacity\": %d, \"hit_rate\": %g, \"put_failures\": %d},\n",
		"fepiad.cache", cs.Hits, cs.Misses, cs.Size, cs.Capacity, cs.HitRate(), cs.PutFailures)

	fmt.Fprintf(w, "%q: {", "fepiad.latency_ms")
	for i, ub := range latencyBuckets {
		fmt.Fprintf(w, "\"le_%g\": %d, ", ub, m.latency[i].Load())
	}
	fmt.Fprintf(w, "\"inf\": %d, ", m.latency[len(latencyBuckets)].Load())
	fmt.Fprintf(w, "\"count\": %d, \"sum_ms\": %d}\n", m.latencyCount.Load(), m.latencySumMS.Load())
	fmt.Fprintf(w, "}\n")
}

// writeBreakerVar emits one endpoint breaker's state object; a nil
// breaker (Config.BreakerWindow < 0) reports state "disabled" so the
// variable is always present for dashboards.
func writeBreakerVar(w io.Writer, name string, b *breaker) {
	if b == nil {
		fmt.Fprintf(w, "%q: {\"state\": \"disabled\"},\n", name)
		return
	}
	snap, _ := json.Marshal(b.snapshot())
	fmt.Fprintf(w, "%q: %s,\n", name, snap)
}
