package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/faults"
	"fepia/internal/obs"
)

// Endpoint label values of the per-endpoint metric series.
const (
	epAnalyze = "analyze"
	epBatch   = "batch"
	epWatch   = "watch"
)

// endpoints lists every labelled /v1/ endpoint, in exposition order.
var endpoints = []string{epAnalyze, epBatch, epWatch}

// latencyBuckets are the upper bounds, in milliseconds, of the
// per-endpoint request latency histograms (the last bucket is +Inf).
// /debug/vars renders them as le_<bound> keys; /metrics as cumulative
// le="<bound>" buckets.
var latencyBuckets = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// telemetry is the server's observability state: one obs.Registry that
// feeds BOTH exposition surfaces — the Prometheus text document on
// /metrics and the expvar-compatible JSON on /debug/vars — so the two
// can never disagree, plus the trace ring behind /debug/traces. Every
// instrument is atomic; handlers never lock to record.
type telemetry struct {
	reg    *obs.Registry
	traces *obs.TraceRing
	// slo tracks the per-endpoint availability and latency objectives
	// behind the fepiad_slo_* burn-rate gauges (internal/obs/slo.go).
	slo *obs.SLO

	// requests / errs / latency are per-endpoint series; analyses,
	// rejected, retries, degraded, inFlight are process-wide. slowReqs
	// counts requests at or past Config.TraceSlowThreshold.
	requests map[string]*obs.Counter
	errs     map[string]*obs.Counter
	latency  map[string]*obs.Histogram
	slowReqs map[string]*obs.Counter
	analyses *obs.Counter
	rejected *obs.Counter
	retries  *obs.Counter
	degraded *obs.Counter
	inFlight *obs.Gauge
	// clusterDegraded counts requests served locally because their ring
	// owner was unreachable (cluster degraded fallback, not the cache
	// fallback `degraded` counts).
	clusterDegraded *obs.Counter

	// Snapshot persistence instruments (internal/server/snapshot.go).
	// Writes/loads count completed operations; the failure counters split
	// out write errors (disk, injected snapshot_write faults) and load
	// rejections (corrupt, truncated, version skew — a missing file on
	// first boot is neither). The gauges describe the last successful
	// write (entries, bytes) and the entry count restored at boot.
	snapWrites        *obs.Counter
	snapWriteFailures *obs.Counter
	snapLoads         *obs.Counter
	snapLoadFailures  *obs.Counter
	snapLastEntries   *obs.Gauge
	snapLastBytes     *obs.Gauge
	snapRestored      *obs.Gauge

	// anytimePartial counts responses containing at least one certified
	// lower bound instead of a converged radius (meta.anytime=true).
	anytimePartial *obs.Counter

	// Watch-session instruments (internal/server/watch.go): sessions
	// opened, steps streamed, and radii reported changed across all
	// steps. changed_radii / steps is the stream's effective compression
	// — how much of each frame the incremental wire actually ships.
	watchSessions     *obs.Counter
	watchSteps        *obs.Counter
	watchChangedRadii *obs.Counter
}

// newTelemetry builds the registry and registers every serving metric,
// the cache and breaker gauge sources, the runtime gauges, and — when
// the injector keeps stats — the injected-fault counters by point/kind.
func newTelemetry(s *Server) telemetry {
	reg := obs.NewRegistry()
	t := telemetry{
		reg:      reg,
		traces:   obs.NewTraceRing(s.cfg.TraceCapacity),
		requests: make(map[string]*obs.Counter, len(endpoints)),
		errs:     make(map[string]*obs.Counter, len(endpoints)),
		latency:  make(map[string]*obs.Histogram, len(endpoints)),
		slowReqs: make(map[string]*obs.Counter, len(endpoints)),
		analyses: reg.Counter("fepiad_analyses_total", "Systems analysed (a batch of n counts n)."),
		rejected: reg.Counter("fepiad_rejected_total", "Requests shed by the admission gate (503)."),
		retries:  reg.Counter("fepiad_retries_total", "Per-feature solve re-attempts by the transient-failure retry policy."),
		degraded: reg.Counter("fepiad_degraded_total", "Responses served from the radius cache in degraded mode."),
		inFlight: reg.Gauge("fepiad_in_flight", "Requests currently holding an admission slot."),
		clusterDegraded: reg.Counter("fepiad_cluster_degraded_total",
			"Requests served locally in degraded mode because their ring owner was unreachable."),
		snapWrites: reg.Counter("fepiad_snapshot_writes_total",
			"Cache snapshots written to -snapshot-path (periodic and drain)."),
		snapWriteFailures: reg.Counter("fepiad_snapshot_write_failures_total",
			"Cache snapshot writes that failed; the previous good snapshot is kept."),
		snapLoads: reg.Counter("fepiad_snapshot_loads_total",
			"Cache snapshots restored at boot."),
		snapLoadFailures: reg.Counter("fepiad_snapshot_load_failures_total",
			"Boot-time snapshot loads rejected (corrupt, truncated, version skew); the node booted cold."),
		snapLastEntries: reg.Gauge("fepiad_snapshot_last_entries",
			"Entries in the most recent successful cache snapshot."),
		snapLastBytes: reg.Gauge("fepiad_snapshot_last_bytes",
			"Size in bytes of the most recent successful cache snapshot."),
		snapRestored: reg.Gauge("fepiad_snapshot_restored_entries",
			"Entries restored from the snapshot at boot (0 on a cold boot)."),
		anytimePartial: reg.Counter("fepiad_anytime_partial_total",
			"Responses carrying a certified lower bound instead of a converged radius (meta.anytime)."),
		watchSessions: reg.Counter("fepiad_watch_sessions_total",
			"Incremental watch sessions opened on /v1/watch."),
		watchSteps: reg.Counter("fepiad_watch_steps_total",
			"Watch frames streamed (one per analysed operating point)."),
		watchChangedRadii: reg.Counter("fepiad_watch_changed_radii_total",
			"Radii reported changed across all watch frames (the incremental wire's payload)."),
	}
	for _, ep := range endpoints {
		t.requests[ep] = reg.Counter("fepiad_requests_total", "Requests by endpoint.", obs.L("endpoint", ep))
		t.errs[ep] = reg.Counter("fepiad_errors_total", "Non-2xx responses by endpoint.", obs.L("endpoint", ep))
		t.latency[ep] = reg.Histogram("fepiad_request_duration_ms", "Request latency by endpoint, in milliseconds.",
			latencyBuckets, obs.L("endpoint", ep))
		t.slowReqs[ep] = reg.Counter("fepiad_slow_requests_total",
			"Requests at or past -trace-slow-threshold (force-kept in /debug/traces).", obs.L("endpoint", ep))
	}
	t.slo = obs.NewSLO(reg, endpoints, obs.SLOConfig{
		LatencyP99MS: s.cfg.SLOLatencyP99MS,
		Availability: s.cfg.SLOAvailability,
	}, nil)
	t.traces.SetSample(s.cfg.TraceSample)

	cache := s.cache
	reg.GaugeFunc("fepiad_cache_hits", "Radius-cache lookups served from memory.",
		func() float64 { return float64(cache.Stats().Hits) })
	reg.GaugeFunc("fepiad_cache_misses", "Radius-cache lookups that had to solve.",
		func() float64 { return float64(cache.Stats().Misses) })
	reg.GaugeFunc("fepiad_cache_entries", "Radius-cache current occupancy.",
		func() float64 { return float64(cache.Stats().Size) })
	reg.GaugeFunc("fepiad_cache_capacity", "Radius-cache entry capacity.",
		func() float64 { return float64(cache.Stats().Capacity) })
	reg.GaugeFunc("fepiad_cache_put_failures", "Radius-cache inserts dropped by injected cache_put faults.",
		func() float64 { return float64(cache.Stats().PutFailures) })
	reg.GaugeFunc("fepiad_cache_shards", "Radius-cache shard count (fixed at construction).",
		func() float64 { return float64(cache.Stats().Shards) })
	reg.GaugeFunc("fepiad_cache_dup_suppressed", "Radius-cache lookups coalesced onto an in-flight identical solve.",
		func() float64 { return float64(cache.Stats().DupSuppressed) })
	reg.GaugeFunc("fepiad_cache_contended", "Radius-cache shard-lock acquisitions that had to wait (contention proxy).",
		func() float64 { return float64(cache.Stats().Contended) })
	for i := 0; i < cache.Stats().Shards; i++ {
		i := i
		reg.GaugeFunc("fepiad_cache_shard_entries", "Radius-cache occupancy by shard.",
			func() float64 { return float64(cache.ShardSize(i)) },
			obs.L("shard", fmt.Sprintf("%d", i)))
	}

	registerBreaker(reg, epAnalyze, s.analyzeBreaker)
	registerBreaker(reg, epBatch, s.batchBreaker)
	registerCluster(reg, s.router)

	if fs, ok := s.cfg.Injector.(interface{ Stats() faults.Stats }); ok {
		for _, p := range faults.Points {
			for _, k := range faults.Kinds {
				p, k := p, k
				reg.GaugeFunc("fepiad_faults_injected", "Faults delivered by the injection harness, by point and kind.",
					func() float64 { return float64(fs.Stats()[p][k]) },
					obs.L("point", string(p)), obs.L("kind", string(k)))
			}
		}
	}

	obs.RegisterRuntime(reg)
	return t
}

// registerBreaker exposes one endpoint breaker as scrape-time gauges:
// state (0 closed, 1 half-open, 2 open, -1 disabled) and trip count.
func registerBreaker(reg *obs.Registry, ep string, b *faults.Breaker) {
	reg.GaugeFunc("fepiad_breaker_state", "Circuit-breaker state by endpoint: 0 closed, 1 half-open, 2 open, -1 disabled.",
		func() float64 { return breakerStateValue(b) }, obs.L("endpoint", ep))
	reg.GaugeFunc("fepiad_breaker_opens", "Circuit-breaker trips by endpoint.",
		func() float64 {
			if b == nil {
				return 0
			}
			return float64(b.Snapshot().Opens)
		}, obs.L("endpoint", ep))
}

// registerCluster exposes the cluster peer layer as scrape-time gauges:
// per-peer forward traffic (fepiad_cluster_forwards_total, _hits, and
// _failures), per-peer federation traffic (fepiad_cluster_fetches_total
// and _failures), per-peer breaker state on the same scale as the endpoint
// breakers, and each ring member's key-space share. A nil router (solo
// node) registers nothing — the series simply don't exist, matching how
// Prometheus models absent subsystems.
func registerCluster(reg *obs.Registry, rt *cluster.Router) {
	if rt == nil {
		return
	}
	for _, id := range rt.PeerIDs() {
		id := id
		reg.GaugeFunc("fepiad_cluster_forwards_total", "Requests forwarded to the peer (ring-owner routing).",
			func() float64 { return float64(rt.PeerStats(id).Forwards) }, obs.L("peer", id))
		reg.GaugeFunc("fepiad_cluster_forward_hits_total", "Forwards the peer answered 2xx.",
			func() float64 { return float64(rt.PeerStats(id).ForwardHits) }, obs.L("peer", id))
		reg.GaugeFunc("fepiad_cluster_forward_failures_total", "Forwards that failed after retries or were breaker-rejected.",
			func() float64 { return float64(rt.PeerStats(id).Failures) }, obs.L("peer", id))
		reg.GaugeFunc("fepiad_cluster_fetches_total", "Federation GETs to the peer (cluster status and metrics fan-out).",
			func() float64 { return float64(rt.PeerStats(id).Fetches) }, obs.L("peer", id))
		reg.GaugeFunc("fepiad_cluster_fetch_failures_total", "Federation GETs that failed after retries or were breaker-rejected.",
			func() float64 { return float64(rt.PeerStats(id).FetchFailures) }, obs.L("peer", id))
		reg.GaugeFunc("fepiad_cluster_peer_breaker_state", "Per-peer circuit-breaker state: 0 closed, 1 half-open, 2 open, -1 disabled.",
			func() float64 { return peerBreakerStateValue(rt.PeerStats(id).Breaker.State) }, obs.L("peer", id))
	}
	ring := rt.Ring()
	for _, id := range ring.Nodes() {
		share := ring.Share(id) // the ring is immutable; snapshot once
		reg.GaugeFunc("fepiad_cluster_ring_share", "Fraction of the key space the ring member owns.",
			func() float64 { return share }, obs.L("node", id))
	}
}

// peerBreakerStateValue maps a breaker snapshot's state string onto the
// same gauge scale as breakerStateValue.
func peerBreakerStateValue(state string) float64 {
	switch state {
	case "open":
		return 2
	case "half_open":
		return 1
	case "disabled":
		return -1
	}
	return 0
}

// breakerStateValue maps a breaker's state onto the gauge scale: 0
// closed, 1 half-open, 2 open, -1 disabled (nil breaker).
func breakerStateValue(b *faults.Breaker) float64 {
	if b == nil {
		return -1
	}
	switch b.Snapshot().State {
	case "open":
		return 2
	case "half_open":
		return 1
	}
	return 0
}

// requestsTotal sums the per-endpoint request counters: the
// backward-compatible fepiad.requests expvar.
func (t *telemetry) requestsTotal() uint64 {
	var n uint64
	for _, ep := range endpoints {
		n += t.requests[ep].Value()
	}
	return n
}

// errsTotal sums the per-endpoint error counters.
func (t *telemetry) errsTotal() uint64 {
	var n uint64
	for _, ep := range endpoints {
		n += t.errs[ep].Value()
	}
	return n
}

// observe records one finished request on its endpoint's histogram,
// with an exemplar linking the bucket to the request's trace ID — the
// breadcrumb from a latency alert to the exact trace on /debug/traces.
func (t *telemetry) observe(ep string, d time.Duration, traceID string) {
	t.latency[ep].ObserveExemplar(float64(d)/float64(time.Millisecond), traceID)
}

// handleMetrics serves the Prometheus text exposition. The counters here
// and the /debug/vars document read the same registry instruments. With
// ?federate=1 on a clustered node, the document is the fleet view: peer
// registry snapshots merged into the local one (federation.go).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.URL.Query().Get("federate") == "1" && s.router != nil {
		snap := s.federatedSnapshot(r.Context())
		_ = snap.WritePrometheus(w)
		return
	}
	_ = s.metrics.reg.WritePrometheus(w)
}

// handleTraces serves the trace ring: the most recent and the
// slowest-ever request traces, with per-stage spans.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.metrics.traces.Snapshot())
}

// writeVars emits the expvar-compatible JSON document served on
// /debug/vars: every variable of the process-global expvar registry
// (cmdline, memstats, …) plus the server-local fepiad.* counters, all
// sourced from the same obs.Registry instruments as /metrics. The server
// publishes its own document instead of expvar.Publish because expvar's
// registry is process-global and would collide across the many Server
// instances the test suite creates.
func (s *Server) writeVars(w io.Writer) {
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value)
	})
	m := &s.metrics
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.requests", m.requestsTotal())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.analyses", m.analyses.Value())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.rejected", m.rejected.Value())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.errors", m.errsTotal())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.in_flight", int64(m.inFlight.Value()))
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.retries", m.retries.Value())
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.degraded", m.degraded.Value())
	writeBreakerVar(w, "fepiad.breaker.analyze", s.analyzeBreaker)
	writeBreakerVar(w, "fepiad.breaker.batch", s.batchBreaker)
	s.writeClusterVar(w)

	cs := s.cache.Stats()
	fmt.Fprintf(w, "%q: {\"hits\": %d, \"misses\": %d, \"size\": %d, \"capacity\": %d, \"hit_rate\": %g, \"put_failures\": %d, "+
		"\"shards\": %d, \"dup_suppressed\": %d, \"contended\": %d},\n",
		"fepiad.cache", cs.Hits, cs.Misses, cs.Size, cs.Capacity, cs.HitRate(), cs.PutFailures,
		cs.Shards, cs.DupSuppressed, cs.Contended)

	// Snapshot persistence and anytime serving: always present (zeroed
	// when the features are off) so dashboards never branch on absence.
	fmt.Fprintf(w, "%q: {\"writes\": %d, \"write_failures\": %d, \"loads\": %d, \"load_failures\": %d, "+
		"\"last_entries\": %d, \"last_bytes\": %d, \"restored_entries\": %d},\n",
		"fepiad.snapshot", m.snapWrites.Value(), m.snapWriteFailures.Value(),
		m.snapLoads.Value(), m.snapLoadFailures.Value(),
		int64(m.snapLastEntries.Value()), int64(m.snapLastBytes.Value()), int64(m.snapRestored.Value()))
	fmt.Fprintf(w, "%q: %d,\n", "fepiad.anytime_partial", m.anytimePartial.Value())
	fmt.Fprintf(w, "%q: {\"sessions\": %d, \"steps\": %d, \"changed_radii\": %d},\n",
		"fepiad.watch", m.watchSessions.Value(), m.watchSteps.Value(), m.watchChangedRadii.Value())

	// Per-endpoint latency histograms plus the merged aggregate the
	// pre-split dashboards read.
	var agg obs.HistogramSnapshot
	for i, ep := range endpoints {
		snap := m.latency[ep].Snapshot()
		writeLatencyVar(w, "fepiad.latency_ms."+ep, snap, true)
		if i == 0 {
			agg = snap
		} else {
			agg = agg.Merge(snap)
		}
	}
	writeLatencyVar(w, "fepiad.latency_ms", agg, false)
	fmt.Fprintf(w, "}\n")
}

// writeLatencyVar renders one latency histogram in the expvar document's
// le_<bound> object shape.
func writeLatencyVar(w io.Writer, name string, snap obs.HistogramSnapshot, comma bool) {
	fmt.Fprintf(w, "%q: {", name)
	for i, ub := range snap.Bounds {
		fmt.Fprintf(w, "\"le_%g\": %d, ", ub, snap.Counts[i])
	}
	fmt.Fprintf(w, "\"inf\": %d, ", snap.Counts[len(snap.Bounds)])
	fmt.Fprintf(w, "\"count\": %d, \"sum_ms\": %d}", snap.Count, uint64(snap.Sum+0.5))
	if comma {
		fmt.Fprintf(w, ",")
	}
	fmt.Fprintf(w, "\n")
}

// writeClusterVar emits the fepiad.cluster object of /debug/vars: the
// node's identity, the cluster-degraded counter, per-peer forward
// traffic with breaker snapshots, and each ring member's key-space
// share. Solo nodes emit a minimal object so the variable is always
// present for dashboards.
func (s *Server) writeClusterVar(w io.Writer) {
	if s.router == nil {
		fmt.Fprintf(w, "%q: {\"enabled\": false},\n", "fepiad.cluster")
		return
	}
	fmt.Fprintf(w, "%q: {\"enabled\": true, \"self\": %q, \"degraded_local\": %d, \"peers\": {",
		"fepiad.cluster", s.router.Self(), s.metrics.clusterDegraded.Value())
	for i, id := range s.router.PeerIDs() {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		st := s.router.PeerStats(id)
		snap, _ := json.Marshal(st.Breaker)
		fmt.Fprintf(w, "%q: {\"forwards\": %d, \"hits\": %d, \"failures\": %d, \"breaker\": %s}",
			id, st.Forwards, st.ForwardHits, st.Failures, snap)
	}
	fmt.Fprintf(w, "}, \"ring\": {")
	ring := s.router.Ring()
	for i, id := range ring.Nodes() {
		if i > 0 {
			fmt.Fprintf(w, ", ")
		}
		fmt.Fprintf(w, "%q: %g", id, ring.Share(id))
	}
	fmt.Fprintf(w, "}},\n")
}

// writeBreakerVar emits one endpoint breaker's state object; a nil
// breaker (Config.BreakerWindow < 0) reports state "disabled" so the
// variable is always present for dashboards.
func writeBreakerVar(w io.Writer, name string, b *faults.Breaker) {
	if b == nil {
		fmt.Fprintf(w, "%q: {\"state\": \"disabled\"},\n", name)
		return
	}
	snap, _ := json.Marshal(b.Snapshot())
	fmt.Fprintf(w, "%q: %s,\n", name, snap)
}
