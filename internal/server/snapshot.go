// Snapshot persistence: the warm-start layer of fepiad. With
// Config.SnapshotPath set, the shared radius cache is serialised with
// the batch snapshot codec atomically (write temp, fsync, rename) on a
// periodic ticker and on drain, and loaded once at boot — so a
// restarted node answers its first request from a warm cache instead of
// re-solving its whole working set (docs/SERVICE.md, "Persistence &
// anytime responses"). A snapshot is an optimisation, never a
// dependency: every load failure — missing, truncated, corrupt, version
// skew — is counted, logged, and answered by booting cold.
package server

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"net/http"
	"os"
	"strconv"
	"time"

	"fepia/internal/faults"
	"fepia/internal/obs"
)

// DefaultSnapshotInterval is the periodic snapshot cadence when
// Config.SnapshotPath is set and Config.SnapshotInterval is zero.
const DefaultSnapshotInterval = 5 * time.Minute

// loadSnapshot restores the cache from Config.SnapshotPath at boot.
// ErrNotExist is a normal first boot; anything else is a warning plus
// the load-failure counter — never a crashed process. A partial temp
// file from a crashed writer sits at path+".tmp" and is ignored by
// construction: only a completed write ever renames onto the real path.
func (s *Server) loadSnapshot() {
	f, err := os.Open(s.cfg.SnapshotPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.cfg.Log.Info("no cache snapshot, booting cold", "path", s.cfg.SnapshotPath)
			return
		}
		s.metrics.snapLoadFailures.Inc()
		s.cfg.Log.Warn("cache snapshot unreadable, booting cold",
			"path", s.cfg.SnapshotPath, "error", err.Error())
		return
	}
	defer f.Close()
	n, err := s.cache.Restore(f)
	if err != nil {
		s.metrics.snapLoadFailures.Inc()
		s.cfg.Log.Warn("cache snapshot rejected, booting cold",
			"path", s.cfg.SnapshotPath, "error", err.Error())
		return
	}
	s.metrics.snapLoads.Inc()
	s.metrics.snapRestored.Set(float64(n))
	s.cfg.Log.Info("cache snapshot restored",
		"path", s.cfg.SnapshotPath, "entries", n)
}

// startSnapshots launches the periodic snapshot goroutine and returns
// its stop function (a no-op closure when persistence or the ticker is
// disabled). The writer runs outside the request path: a slow disk
// delays the next snapshot, never a response.
func (s *Server) startSnapshots() func() {
	if s.cfg.SnapshotPath == "" || s.cfg.SnapshotInterval < 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.writeSnapshot(context.Background(), "periodic")
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// drainSnapshot persists the cache one final time during shutdown, so
// the warm set a pod built over its lifetime survives the deploy.
func (s *Server) drainSnapshot() {
	if s.cfg.SnapshotPath == "" {
		return
	}
	s.writeSnapshot(context.Background(), "drain")
}

// writeSnapshot serialises the cache to SnapshotPath atomically: encode
// to memory, write path+".tmp", fsync, rename. A failure at any step —
// including the faults.SnapshotWrite chaos point — removes the temp
// file and leaves the previous good snapshot untouched. Each run is
// recorded as a "snapshot" trace in the /debug/traces ring and in the
// fepiad_snapshot_* counters.
func (s *Server) writeSnapshot(ctx context.Context, reason string) {
	tr := obs.NewTrace(obs.NewID(), "snapshot")
	ctx = obs.WithTrace(ctx, tr)
	tr.SetAttr("reason", reason)
	sp := obs.StartSpan(ctx, "snapshot")
	err := func() error {
		if err := faults.Inject(faults.With(ctx, s.cfg.Injector), faults.SnapshotWrite); err != nil {
			return err
		}
		var buf bytes.Buffer
		n, err := s.cache.Snapshot(&buf)
		if err != nil {
			return err
		}
		tmp := s.cfg.SnapshotPath + ".tmp"
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf.Bytes()); err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(tmp, s.cfg.SnapshotPath)
		}
		if err != nil {
			_ = os.Remove(tmp)
			return err
		}
		sp.Set("entries", strconv.Itoa(n))
		sp.Set("bytes", strconv.Itoa(buf.Len()))
		s.metrics.snapWrites.Inc()
		s.metrics.snapLastEntries.Set(float64(n))
		s.metrics.snapLastBytes.Set(float64(buf.Len()))
		s.snapLastUnix.Store(time.Now().Unix())
		return nil
	}()
	sp.End(err)
	status := http.StatusOK
	if err != nil {
		status = http.StatusInternalServerError
		s.metrics.snapWriteFailures.Inc()
		s.cfg.Log.Warn("cache snapshot write failed",
			"path", s.cfg.SnapshotPath, "reason", reason, "error", err.Error())
	} else {
		s.cfg.Log.Info("cache snapshot written",
			"path", s.cfg.SnapshotPath, "reason", reason,
			"entries", int64(s.metrics.snapLastEntries.Value()),
			"bytes", int64(s.metrics.snapLastBytes.Value()))
	}
	s.metrics.traces.Add(tr.Finish(status))
}
