// Package server is fepiad's HTTP layer: a stdlib-only service that
// evaluates the robustness metric ρ_μ(Φ, π) on demand over the concurrent
// batch engine. It accepts internal/spec JSON system descriptions on
// POST /v1/analyze (one system) and POST /v1/batch (many systems, fanned
// over the worker pool), shares one process-wide radius cache across every
// request so structurally identical subproblems are solved once, and
// answers with the same spec.ResultJSON documents the CLIs emit — served
// and in-process analyses are byte-identical.
//
// Production posture: every request runs under a deadline and a body-size
// limit; a bounded admission gate sheds load with 503 + Retry-After
// instead of queueing unboundedly; Run drains in-flight analyses on
// shutdown and force-cancels them via context if the drain budget runs
// out; /healthz answers liveness probes.
//
// Observability (docs/OBSERVABILITY.md): one internal/obs registry feeds
// both the Prometheus text exposition on /metrics and the
// expvar-compatible /debug/vars, so the two can never disagree. Every
// /v1/ request carries a request ID (accepted from or emitted as
// X-Request-Id), is logged as one structured slog line, and is traced
// with per-stage spans — parse, breaker, admit, cache get/put,
// per-feature solve (with retry-attempt counts), encode — retained in a
// bounded ring served on /debug/traces (most recent plus slowest-ever).
// /debug/pprof is available behind Config.EnablePprof, with endpoint and
// per-feature profiler labels on the analysis goroutines.
//
// Error discipline: client mistakes (spec.ValidationError) map to 400
// with the offending JSON field path; unsupported analysis combinations
// (core.ErrNormUnsupported) to 400; deadline expiry to 504; shutdown and
// overload to 503; engine failures (core.SolveError) to 500. Every
// non-2xx body is a spec.ErrorJSON envelope.
//
// Resilience (docs/SERVICE.md, "Failure modes & degraded serving"): each
// /v1/ endpoint sits behind a circuit breaker over a sliding
// failure-rate window; transient solve failures are retried under a
// decorrelated-jitter policy; and with Config.Degraded set, an open
// breaker or an engine failure is answered from the shared radius cache
// with a "degraded": true marker and a Warning header, falling through
// to 503 + Retry-After only on a true cache miss. The faults.Injector in
// Config drives the chaos test suite and the FEPIAD_FAULTS knob; it is
// nil — a no-op — in production.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	rpprof "runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fepia/internal/batch"
	"fepia/internal/cluster"
	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/obs"
	"fepia/internal/spec"
)

// PeerError is the typed failure of a cluster forward — which peer, how
// many attempts, the last HTTP status — re-exported so API users match
// it with errors.As alongside spec.ValidationError and core.SolveError.
// The server maps it to 503 ("peer_circuit_open", with Retry-After) when
// the peer's breaker rejected locally and 502 ("peer_unreachable") when
// the forward exhausted its attempts.
type PeerError = cluster.PeerError

// Defaults applied by New for zero-valued Config fields.
const (
	DefaultMaxBodyBytes = 4 << 20
	DefaultTimeout      = 30 * time.Second
	DefaultMaxInFlight  = 64
	DefaultRetryAfter   = 1 * time.Second
	DefaultDrainTimeout = 10 * time.Second
	// DefaultRetryAttempts is the per-feature solve attempt budget for
	// transient failures.
	DefaultRetryAttempts = 3
	// DefaultTraceCapacity bounds each retention list of the trace ring
	// (most recent N, slowest-ever N).
	DefaultTraceCapacity = 64
)

// Circuit-breaker defaults applied by Config.withDefaults, shared by the
// per-endpoint breakers and the per-peer cluster breakers.
const (
	DefaultBreakerWindow    = 20
	DefaultBreakerThreshold = 0.5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Config tunes a Server. The zero value is production-safe: every limit
// falls back to the package defaults above.
type Config struct {
	// MaxBodyBytes bounds a request body; larger bodies are rejected
	// with 400 before parsing.
	MaxBodyBytes int64
	// Timeout is the per-request analysis deadline.
	Timeout time.Duration
	// MaxInFlight bounds concurrently admitted /v1/ requests; excess
	// requests are shed immediately with 503 + Retry-After.
	MaxInFlight int
	// RetryAfter is the Retry-After hint attached to 503 responses.
	RetryAfter time.Duration
	// Workers bounds the analysis worker pool of one /v1/batch request
	// (≤ 0 selects GOMAXPROCS).
	Workers int
	// CacheCapacity bounds the shared radius cache (≤ 0 selects
	// batch.DefaultCacheCapacity).
	CacheCapacity int
	// CacheShards is the shard count of the shared radius cache, rounded
	// up to a power of two (≤ 0 selects a default derived from
	// GOMAXPROCS). Results are identical for any shard count; only
	// multi-core contention changes.
	CacheShards int
	// DrainTimeout is how long Run waits for in-flight requests after
	// shutdown is requested before force-cancelling their analyses.
	DrainTimeout time.Duration
	// TraceCapacity bounds each retention list of the /debug/traces ring
	// (0 selects DefaultTraceCapacity).
	TraceCapacity int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Log is the structured logger: server events and one access-log
	// line per /v1/ request; nil selects slog.Default(). Per-request
	// lines carry request_id, endpoint, status, duration, and outcome
	// attributes.
	Log *slog.Logger

	// RetryMax is the total attempt budget per feature solve for
	// transient failures (0 selects DefaultRetryAttempts, < 0 or 1
	// disables retrying). Permanent failures are never retried.
	RetryMax int
	// BreakerWindow is the sliding outcome window of each endpoint's
	// circuit breaker (0 selects DefaultBreakerWindow, < 0 disables the
	// breakers).
	BreakerWindow int
	// BreakerThreshold is the failure rate over a full window that opens
	// a breaker (0 selects DefaultBreakerThreshold).
	BreakerThreshold float64
	// BreakerCooldown is how long an open breaker rejects before probing
	// half-open (0 selects DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// Degraded enables degraded-mode serving: when a breaker is open or
	// the engine fails, /v1/ endpoints answer from the shared radius
	// cache with a "degraded": true marker instead of failing, and 503
	// only on a true cache miss.
	Degraded bool
	// Kernel routes kernel-eligible linear features through the
	// vectorized SoA analytic kernel (batch.Options.Kernel). Results are
	// bit-identical to the per-feature path, and kernel-solved features
	// flow through the shared radius cache in both directions — warm
	// entries are served without re-solving and fresh solves are
	// memoised for Degraded serving and for the scalar path. Request
	// traces show one "kernel" span in place of per-feature solve spans;
	// fault-injected requests keep the per-feature path regardless. See
	// docs/PERFORMANCE.md.
	Kernel bool
	// SnapshotPath, when non-empty, persists the radius cache across
	// restarts: loaded once at boot (corrupt or missing files boot
	// cold), written atomically every SnapshotInterval and on drain.
	SnapshotPath string
	// SnapshotInterval is the periodic snapshot cadence (0 selects
	// DefaultSnapshotInterval, < 0 disables the ticker — the snapshot is
	// then written only on drain). Ignored without SnapshotPath.
	SnapshotInterval time.Duration
	// Anytime answers deadline-expired /v1 requests with certified
	// partial lower bounds (meta.anytime, "bound": "lower") instead of
	// 504 — see batch.Options.Anytime. Individual specs opt in with
	// their "anytime" field even when this is false.
	Anytime bool
	// Injector, when non-nil, activates the fault-injection harness on
	// every request path (chaos tests, the FEPIAD_FAULTS env knob). Nil
	// in production: every injection point is a no-op. An injector that
	// also keeps stats (faults.Seeded) feeds the fepiad_faults_injected
	// metric series.
	Injector faults.Injector

	// NodeID is this node's identity on the cluster ring (-node-id). It
	// stamps every ResponseMeta and the X-Fepiad-Node header; required
	// when Peers is non-empty, optional (purely informational) solo.
	NodeID string
	// Peers is the full ring membership including this node
	// (cluster.ParsePeers parses the -peers flag format). Empty runs the
	// node solo: no ring, no forwarding, every request served locally.
	// With peers configured, each request's spec is consistent-hashed
	// onto the ring (spec.System.RouteKey) and non-owned requests are
	// forwarded to the owning peer; see docs/CLUSTER.md.
	Peers []cluster.Peer
	// PeerReplicas is the virtual-node count per peer on the ring (0
	// selects cluster.DefaultReplicas). All nodes must agree on it.
	PeerReplicas int
	// ForwardTimeout bounds each forward attempt to a peer (0 selects
	// cluster.DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// CompatV1Degraded re-emits the deprecated top-level "degraded"
	// result marker alongside ResponseMeta.Degraded for clients that
	// have not migrated (-compat-v1-degraded; one release of grace, see
	// docs/SERVICE.md).
	CompatV1Degraded bool

	// SLOLatencyP99MS is the latency objective in milliseconds: at most
	// 1% of successful requests may exceed it (0 selects the
	// internal/obs default, 500ms). Feeds the fepiad_slo_* burn-rate
	// gauges on /metrics.
	SLOLatencyP99MS float64
	// SLOAvailability is the availability objective in (0, 1), e.g.
	// 0.999 (0 selects the internal/obs default, 0.999).
	SLOAvailability float64
	// TraceSlowThreshold, when > 0, marks requests at or above it as
	// slow: they are force-kept in the /debug/traces recent ring even
	// under sampling and counted on fepiad_slow_requests_total.
	TraceSlowThreshold time.Duration
	// TraceSample keeps 1-in-N finished traces in the /debug/traces
	// recent ring (≤ 1 keeps all). Slow-marked traces always stay; the
	// slowest-ever list ignores sampling.
	TraceSample int
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = DefaultTraceCapacity
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.RetryMax == 0 {
		c.RetryMax = DefaultRetryAttempts
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = DefaultBreakerWindow
	}
	if c.BreakerThreshold <= 0 || c.BreakerThreshold > 1 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = DefaultSnapshotInterval
	}
	return c
}

// Server is the fepiad HTTP service. Create one with New; it is safe for
// concurrent use and all its state (the radius cache, the admission gate,
// the counters) is shared across every request it serves.
type Server struct {
	cfg     Config
	cache   *batch.Cache
	gate    chan struct{}
	metrics telemetry
	mux     *http.ServeMux

	// retry is the per-feature transient-failure policy threaded into
	// every engine call; nil when retrying is disabled.
	retry *faults.Policy
	// router is the cluster peer layer; nil when Config.Peers is empty
	// (solo node: every request is served locally).
	router *cluster.Router
	// analyzeBreaker / batchBreaker are the per-endpoint circuit
	// breakers; nil when Config.BreakerWindow < 0.
	analyzeBreaker *faults.Breaker
	batchBreaker   *faults.Breaker

	// baseCtx is the ancestor of every request context; baseCancel
	// force-cancels all in-flight analyses when the drain budget is
	// exhausted during shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// startTime anchors the uptime reported on /v1/cluster/status.
	startTime time.Time
	// snapLastUnix is the wall-clock second of the last successful cache
	// snapshot write (0 when none has happened), read by the federated
	// status document as snapshot age.
	snapLastUnix atomic.Int64

	// beforeAnalyze, when non-nil, runs after a request is admitted and
	// parsed but before its analysis starts. Tests use it to hold
	// requests in flight deterministically.
	beforeAnalyze func()
}

// New builds a Server from cfg (zero value ok). A non-empty Config.Peers
// must describe a valid ring — NodeID listed, unique IDs, http(s) peer
// URLs — or New panics; cmd/fepiad validates the flags with
// cluster.ParsePeers before getting here, so a panic indicates a
// programming error, not user input.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     batch.NewCacheSharded(cfg.CacheCapacity, cfg.CacheShards),
		gate:      make(chan struct{}, cfg.MaxInFlight),
		mux:       http.NewServeMux(),
		startTime: time.Now(),
	}
	if cfg.RetryMax > 1 {
		s.retry = &faults.Policy{
			MaxAttempts: cfg.RetryMax,
			OnRetry:     func(int, time.Duration, error) { s.metrics.retries.Inc() },
		}
	}
	if cfg.BreakerWindow > 0 {
		bcfg := faults.BreakerConfig{Window: cfg.BreakerWindow, Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}
		s.analyzeBreaker = faults.NewBreaker(bcfg)
		s.batchBreaker = faults.NewBreaker(bcfg)
	}
	if len(cfg.Peers) > 0 {
		rt, err := cluster.New(cluster.Config{
			Self:           cfg.NodeID,
			Peers:          cfg.Peers,
			Replicas:       cfg.PeerReplicas,
			ForwardTimeout: cfg.ForwardTimeout,
			RetryMax:       cfg.RetryMax,
			// The per-peer breakers share the endpoint breakers' tuning:
			// one set of knobs governs every circuit in the process.
			BreakerWindow:    cfg.BreakerWindow,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
		})
		if err != nil {
			panic("server: invalid cluster config: " + err.Error())
		}
		s.router = rt
	}
	s.metrics = newTelemetry(s)
	if cfg.SnapshotPath != "" {
		s.loadSnapshot()
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/analyze", s.instrument(epAnalyze, s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/batch", s.instrument(epBatch, s.handleBatch))
	// /v1/watch accepts GET alongside POST so stream-native clients
	// (curl -N, EventSource-style readers) that cannot POST a body via
	// their streaming helper can still open a session.
	s.mux.HandleFunc("POST /v1/watch", s.instrument(epWatch, s.handleWatch))
	s.mux.HandleFunc("GET /v1/watch", s.instrument(epWatch, s.handleWatch))
	s.mux.HandleFunc("GET /v1/ring", s.handleRing)
	s.mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	s.mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's route table, ready to mount on any
// http.Server (or an httptest.Server in tests).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats snapshots the shared radius cache's counters.
func (s *Server) CacheStats() batch.CacheStats { return s.cache.Stats() }

// Registry exposes the server's metrics registry so embedding processes
// (cmd/loadgen -self) can read the same instruments /metrics serves.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// statusWriter captures the response status and size for the access log
// and the trace record.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps a /v1/ handler with the per-request observability
// envelope: request-ID assignment (accepted from or emitted as
// X-Request-Id), a trace recorded into the ring, pprof endpoint labels,
// the per-endpoint request counter and latency histogram (with an
// exemplar linking the bucket to this trace ID), per-endpoint SLO
// accounting, and one structured access-log line carrying the trace's
// outcome attributes.
//
// Cross-node tracing: a request arriving with a well-formed
// X-Fepiad-Trace header (set by a peer's forward) continues that trace —
// same trace ID, root span parented under the ingress forward span — so
// the ingress can stitch this node's spans into one tree. A malformed or
// absent header starts a fresh trace; it is never an error. Every /v1
// response carries the trace ID as X-Fepiad-Trace-Id.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get("X-Request-Id")
		if rid == "" {
			rid = obs.NewID()
		}
		w.Header().Set("X-Request-Id", rid)

		var tr *obs.Trace
		if tid, pid, ok := obs.ParseTraceHeader(r.Header.Get(cluster.TraceHeader)); ok {
			tr = obs.NewTraceRemote(rid, endpoint, tid, pid)
		} else {
			tr = obs.NewTrace(rid, endpoint)
		}
		w.Header().Set(cluster.TraceIDHeader, tr.TraceID())
		reqLog := s.cfg.Log.With("request_id", rid, "endpoint", endpoint)
		ctx := obs.WithTrace(r.Context(), tr)
		ctx = obs.WithLogger(ctx, reqLog)
		// Endpoint profiler labels: batch workers add their own worker and
		// per-feature labels underneath (internal/batch).
		ctx = rpprof.WithLabels(ctx, rpprof.Labels("endpoint", endpoint))
		rpprof.SetGoroutineLabels(ctx)
		defer rpprof.SetGoroutineLabels(r.Context())

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.metrics.requests[endpoint].Inc()
		h(sw, r.WithContext(ctx))

		d := time.Since(start)
		durMS := float64(d) / float64(time.Millisecond)
		s.metrics.observe(endpoint, d, tr.TraceID())
		s.metrics.slo.Record(endpoint, sw.status, durMS)
		td := tr.Finish(sw.status)
		if s.cfg.TraceSlowThreshold > 0 && d >= s.cfg.TraceSlowThreshold {
			// Slow-request capture: force the trace past ring sampling and
			// count it, so the outliers an SLO page is about are always
			// inspectable on /debug/traces.
			td.Slow = true
			s.metrics.slowReqs[endpoint].Inc()
		}
		// Shed 503s record near-zero durations; keeping them out of the
		// slowest-ever list stops them from evicting genuine outliers.
		td.SkipSlowest = td.Attrs["outcome"] == "shed"
		s.metrics.traces.Add(td)

		attrs := []any{"status", sw.status, "duration_ms", durMS, "bytes", sw.bytes}
		for _, a := range tr.Attrs() {
			attrs = append(attrs, a.Name, a.Value)
		}
		reqLog.Info("request", attrs...)
	}
}

// Run serves on l until ctx is cancelled (SIGTERM in cmd/fepiad), then
// shuts down gracefully: the listener closes, in-flight requests get
// Config.DrainTimeout to finish, and any analysis still running after the
// drain budget is force-cancelled through its context. It returns nil on
// a clean drain. The shutdown sequence is logged structurally — drain
// start with the in-flight count, a force-cancel event if the budget
// runs out, and a final metrics flush — so a post-mortem can see how the
// process died.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
		ErrorLog:          slog.NewLogLogger(s.cfg.Log.Handler(), slog.LevelWarn),
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	stopSnapshots := s.startSnapshots()

	select {
	case err := <-serveErr:
		stopSnapshots()
		s.baseCancel()
		return err
	case <-ctx.Done():
	}
	stopSnapshots()

	s.cfg.Log.Info("drain start",
		"in_flight", int64(s.metrics.inFlight.Value()),
		"budget", s.cfg.DrainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(drainCtx)
	if err != nil {
		// Drain budget exhausted: cancel every in-flight analysis via the
		// request contexts and close remaining connections.
		s.cfg.Log.Warn("drain timed out, force-cancelling in-flight analyses",
			"in_flight", int64(s.metrics.inFlight.Value()),
			"error", err.Error())
		s.baseCancel()
		err = errors.Join(err, hs.Close())
	}
	s.baseCancel()
	<-serveErr // always http.ErrServerClosed after Shutdown/Close
	s.drainSnapshot()
	s.flushFinalMetrics(err == nil)
	return err
}

// flushFinalMetrics emits the end-of-life counter summary: the last
// structured line a pod writes, so post-mortems see its totals even when
// the scraper missed the final interval.
func (s *Server) flushFinalMetrics(clean bool) {
	m := &s.metrics
	cs := s.cache.Stats()
	s.cfg.Log.Info("final metrics",
		"clean_drain", clean,
		"requests", m.requestsTotal(),
		"analyses", m.analyses.Value(),
		"errors", m.errsTotal(),
		"rejected", m.rejected.Value(),
		"retries", m.retries.Value(),
		"degraded", m.degraded.Value(),
		"cache_hits", cs.Hits,
		"cache_misses", cs.Misses)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\": \"ok\", \"in_flight\": %d}\n", int64(s.metrics.inFlight.Value()))
}

// handleVars serves the expvar-compatible counter document.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	s.writeVars(w)
}

// admit reserves an in-flight slot, or sheds the request with 503 +
// Retry-After when the gate is saturated (or an admission fault is
// injected). The returned release func must be called exactly once iff
// admitted.
func (s *Server) admit(endpoint string, w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	sp := obs.StartSpan(r.Context(), "admit")
	if err := faults.Inject(faults.With(r.Context(), s.cfg.Injector), faults.Admission); err != nil {
		sp.Set("admitted", "false")
		sp.End(err)
		obs.TraceFrom(r.Context()).SetAttr("outcome", "shed")
		s.metrics.rejected.Inc()
		s.metrics.errs[endpoint].Inc()
		s.retryAfterHeader(w)
		writeError(w, http.StatusServiceUnavailable, spec.ErrorJSON{
			Error: "admission refused: " + err.Error(),
			Kind:  "overloaded",
		})
		return nil, false
	}
	select {
	case s.gate <- struct{}{}:
		sp.Set("admitted", "true")
		sp.End(nil)
		s.metrics.inFlight.Add(1)
		return func() {
			s.metrics.inFlight.Add(-1)
			<-s.gate
		}, true
	default:
		sp.Set("admitted", "false")
		sp.End(nil)
		obs.TraceFrom(r.Context()).SetAttr("outcome", "shed")
		s.metrics.rejected.Inc()
		s.metrics.errs[endpoint].Inc()
		s.retryAfterHeader(w)
		writeError(w, http.StatusServiceUnavailable, spec.ErrorJSON{
			Error: "server saturated: too many analyses in flight",
			Kind:  "overloaded",
		})
		return nil, false
	}
}

// retryAfterHeader attaches the Retry-After hint every 503 carries.
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
}

// readBody reads a size-capped request body.
func (s *Server) readBody(endpoint string, w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.metrics.errs[endpoint].Inc()
		obs.TraceFrom(r.Context()).SetAttr("outcome", "invalid_spec")
		status, kind := http.StatusBadRequest, "invalid_spec"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, kind = http.StatusRequestEntityTooLarge, "invalid_spec"
		}
		writeError(w, status, spec.ErrorJSON{Error: "reading body: " + err.Error(), Kind: kind})
		return nil, false
	}
	return body, true
}

// handleAnalyze serves POST /v1/analyze: one spec document in, one
// ResultJSON out, identical to the in-process library path modulo the
// ResponseMeta block. With a cluster configured, a spec whose RouteKey
// hashes to another node is relayed verbatim to its ring owner; when the
// owner is unreachable and degraded mode is on, the request is served
// locally with meta.degraded set so killing a node drops zero requests.
// When the endpoint's breaker is open or the engine fails, degraded mode
// (if enabled) answers from the radius cache instead; see answerDegraded.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	psp := obs.StartSpan(r.Context(), "parse")
	body, ok := s.readBody(epAnalyze, w, r)
	if !ok {
		psp.End(errors.New("body rejected"))
		return
	}
	sys, err := spec.Parse(body)
	psp.End(err)
	if err != nil {
		s.fail(epAnalyze, w, r, err)
		return
	}

	forwarded := r.Header.Get(cluster.ForwardedFromHeader) != ""
	degradedPeer := false
	if s.router != nil && !forwarded {
		if owner := s.router.Owner(sys.RouteKey); owner != s.router.Self() {
			if s.relay(epAnalyze, w, r, owner, "/v1/analyze", body) {
				return
			}
			// Owner unreachable and degraded mode on: answer locally so
			// the request is served, not dropped, and mark it degraded.
			degradedPeer = true
		}
	}

	if !s.allowEndpoint(s.analyzeBreaker, r) {
		s.answerDegraded(epAnalyze, w, r, []*spec.System{sys}, false, forwarded, "circuit_open",
			"analyze engine circuit open: recent solves kept failing")
		return
	}
	release, ok := s.admit(epAnalyze, w, r)
	if !ok {
		// The request never reached the engine; return any half-open
		// probe slot breakerAllow reserved or the breaker wedges.
		s.breakerCancel(s.analyzeBreaker)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	ctx = faults.With(ctx, s.cfg.Injector)
	rs := &batch.RequestStats{}
	ctx = batch.WithRequestStats(ctx, rs)
	if s.beforeAnalyze != nil {
		s.beforeAnalyze()
	}
	// ShareBoundaries: the analysis is encoded to JSON and dropped, so
	// cached boundary points need no defensive clone — the warm-hit path
	// stays allocation-free.
	a, err := batch.AnalyzeOneContext(ctx, batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
		batch.Options{Cache: s.cache, Core: sys.Options, Retry: s.retry, ShareBoundaries: true,
			Kernel: s.cfg.Kernel, Anytime: s.anytime(sys)})
	s.breakerReport(s.analyzeBreaker, err)
	if err != nil {
		if s.cfg.Degraded && degradable(err) {
			s.answerDegraded(epAnalyze, w, r, []*spec.System{sys}, false, forwarded, "degraded",
				"engine failed and no cached answer exists: "+err.Error())
			return
		}
		s.fail(epAnalyze, w, r, err)
		return
	}
	s.metrics.analyses.Inc()
	res := spec.Encode(sys.Name, a)
	res.Meta = s.meta(forwarded, degradedPeer, rs.Source())
	if anyLowerBound(a) {
		res.Meta.Anytime = true
		s.metrics.anytimePartial.Inc()
		obs.TraceFrom(r.Context()).SetAttr("anytime", "partial")
	}
	if s.cfg.CompatV1Degraded && degradedPeer {
		res.Degraded = true
	}
	if degradedPeer {
		s.noteClusterDegraded(w, r, 1)
	}
	esp := obs.StartSpan(r.Context(), "encode")
	s.serveHeaders(w, r, forwarded)
	writeJSON(w, http.StatusOK, res)
	esp.End(nil)
}

// relay forwards a request's raw body to its ring owner and relays the
// peer's verdict verbatim — status, body, and wire headers — so a
// forwarded response is byte-identical to asking the owner directly. It
// returns true when the response has been written (relayed, or failed
// terminally) and false when the caller should fall back to serving the
// request locally in degraded mode.
//
// The forward carries X-Fepiad-Trace (this trace's ID plus the forward
// span's ID) so the owner continues the trace; the owner's span subtree
// comes back on X-Fepiad-Spans and is stitched under the forward span,
// giving the ingress ONE cross-node trace on /debug/traces. The forward
// span is annotated with the peer, the HTTP attempts spent, and the peer
// breaker's state.
func (s *Server) relay(endpoint string, w http.ResponseWriter, r *http.Request, owner, path string, body []byte) bool {
	sp := obs.StartSpan(r.Context(), "forward")
	sp.Set("peer", owner)
	tr := obs.TraceFrom(r.Context())
	resp, err := s.router.Forward(r.Context(), owner, path, body, s.forwardHeader(r, tr, sp))
	if resp != nil {
		sp.Set("attempts", strconv.Itoa(resp.Attempts))
	}
	sp.Set("breaker", s.router.PeerStats(owner).Breaker.State)
	sp.End(err)
	if err == nil {
		s.stitchRemoteSpans(tr, sp, resp)
		tr.SetAttr("forwarded_to", owner)
		for _, h := range [...]string{"Content-Type", "Warning", "Retry-After", cluster.NodeHeader} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set(cluster.ForwardedHeader, "true")
		w.WriteHeader(resp.Status)
		_, _ = w.Write(resp.Body)
		return true
	}
	if ctxErr := r.Context().Err(); ctxErr != nil {
		// The client went away or the deadline expired while forwarding;
		// the peer is not to blame and local serving cannot help.
		s.fail(endpoint, w, r, ctxErr)
		return true
	}
	if s.cfg.Degraded {
		obs.Logger(r.Context()).Warn("peer forward failed, serving locally degraded",
			"peer", owner, "error", err.Error())
		return false
	}
	s.fail(endpoint, w, r, err)
	return true
}

// spanExport is the X-Fepiad-Spans wire document: the answering node's
// ID plus its span subtree, compact JSON in one response header.
type spanExport struct {
	Node  string         `json:"node"`
	Spans []obs.SpanData `json:"spans"`
}

// forwardHeader clones the inbound headers a forward propagates and adds
// the X-Fepiad-Trace context — the trace ID plus the forward span that
// becomes the remote server span's parent.
func (s *Server) forwardHeader(r *http.Request, tr *obs.Trace, sp *obs.Span) http.Header {
	hdr := r.Header.Clone()
	if tr != nil {
		hdr.Set(cluster.TraceHeader, obs.FormatTraceHeader(tr.TraceID(), sp.ID()))
	}
	return hdr
}

// stitchRemoteSpans merges the span subtree a peer exported on
// X-Fepiad-Spans into this trace, shifted onto the forward span's
// timeline. A missing or malformed header is ignored: stitching is an
// observability bonus, never a serving dependency.
func (s *Server) stitchRemoteSpans(tr *obs.Trace, sp *obs.Span, resp *cluster.Response) {
	if tr == nil || resp == nil {
		return
	}
	raw := resp.Header.Get(cluster.SpansHeader)
	if raw == "" {
		return
	}
	var ex spanExport
	if err := json.Unmarshal([]byte(raw), &ex); err != nil {
		return
	}
	tr.Stitch(ex.Spans, sp.StartOffsetUS())
}

// meta assembles the shared ResponseMeta block every /v1 response
// carries (docs/SERVICE.md, "Response metadata").
func (s *Server) meta(forwarded, degraded bool, cache string) *spec.ResponseMeta {
	return &spec.ResponseMeta{Node: s.cfg.NodeID, Forwarded: forwarded, Degraded: degraded, Cache: cache}
}

// anytime reports whether a system is served in anytime mode: the
// server-wide flag or the spec's own opt-in.
func (s *Server) anytime(sys *spec.System) bool {
	return s.cfg.Anytime || sys.File.Anytime
}

// anyLowerBound reports whether an analysis carries at least one
// certified partial radius — the condition for meta.anytime.
func anyLowerBound(a core.Analysis) bool {
	for i := range a.Radii {
		if a.Radii[i].Kind == core.LowerBound {
			return true
		}
	}
	return false
}

// serveHeaders stamps the wire headers of a locally served /v1 response:
// the answering node's ID and, for requests that arrived via a peer
// forward, the forwarded marker plus the X-Fepiad-Spans export — this
// node's span subtree, which the ingress stitches under its forward
// span. Only traces that actually continue a remote trace export
// (single-hop rule: a forwarded-in request is never re-forwarded, so the
// export travels exactly one hop back).
func (s *Server) serveHeaders(w http.ResponseWriter, r *http.Request, forwarded bool) {
	if s.cfg.NodeID != "" {
		w.Header().Set(cluster.NodeHeader, s.cfg.NodeID)
	}
	if forwarded {
		w.Header().Set(cluster.ForwardedHeader, "true")
		if tr := obs.TraceFrom(r.Context()); tr != nil && tr.Remote() {
			if raw, err := json.Marshal(spanExport{
				Node:  s.cfg.NodeID,
				Spans: tr.ExportSpans(s.cfg.NodeID, maxExportSpans),
			}); err == nil {
				w.Header().Set(cluster.SpansHeader, string(raw))
			}
		}
	}
}

// maxExportSpans bounds one X-Fepiad-Spans header: the synthetic server
// span plus the first N-1 recorded spans. A huge batch trace stays a
// bounded header instead of a megabyte of response metadata.
const maxExportSpans = 64

// noteClusterDegraded records n requests served locally because their
// ring owner was unreachable: the cluster-degraded counter, the trace
// marker, and the Warning header (set before the status is written).
func (s *Server) noteClusterDegraded(w http.ResponseWriter, r *http.Request, n int) {
	s.metrics.clusterDegraded.Add(uint64(n))
	obs.TraceFrom(r.Context()).SetAttr("degraded", "true")
	w.Header().Set("Warning", `199 fepiad "degraded: ring owner unreachable, served locally"`)
}

// handleRing serves GET /v1/ring: this node's view of the cluster — the
// membership, each member's key-space share, and the virtual-point count.
// Solo nodes report themselves as the only member with share 1.
func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	type member struct {
		ID    string  `json:"id"`
		URL   string  `json:"url,omitempty"`
		Self  bool    `json:"self,omitempty"`
		Share float64 `json:"share"`
	}
	doc := struct {
		Self     string   `json:"self,omitempty"`
		Replicas int      `json:"replicas,omitempty"`
		Members  []member `json:"members"`
	}{Self: s.cfg.NodeID}
	if s.router == nil {
		doc.Members = []member{{ID: s.cfg.NodeID, Self: true, Share: 1}}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	ring := s.router.Ring()
	doc.Replicas = ring.Replicas()
	for _, p := range s.router.Members() {
		doc.Members = append(doc.Members, member{
			ID: p.ID, URL: p.URL, Self: p.ID == s.router.Self(), Share: ring.Share(p.ID),
		})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleBatch serves POST /v1/batch: many systems fanned over the batch
// engine's worker pool against the shared radius cache, results in
// request order. Each system keeps its own norm/options, so the fan-out
// runs per-system jobs (batch.AnalyzeOneContext) over the engine's
// scheduling substrate rather than one homogeneous batch.Analyze call.
//
// With a cluster configured, the batch is partitioned by ring owner:
// self-owned systems solve locally while each peer's systems travel as
// one concurrent sub-batch (re-marshaled from the validated specs) and
// scatter back into their request-order slots. A peer whose sub-batch
// fails is covered by a local degraded solve — zero dropped systems —
// unless degraded mode is off, in which case the whole batch fails with
// the peer error. Forwarded-in batches (single-hop rule) solve entirely
// locally.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	psp := obs.StartSpan(r.Context(), "parse")
	body, ok := s.readBody(epBatch, w, r)
	if !ok {
		psp.End(errors.New("body rejected"))
		return
	}
	systems, err := spec.ParseBatch(body)
	psp.End(err)
	if err != nil {
		s.fail(epBatch, w, r, err)
		return
	}

	forwarded := r.Header.Get(cluster.ForwardedFromHeader) != ""
	var remote map[string][]int
	if s.router != nil && !forwarded {
		self := s.router.Self()
		for i, sys := range systems {
			if owner := s.router.Owner(sys.RouteKey); owner != self {
				if remote == nil {
					remote = make(map[string][]int)
				}
				remote[owner] = append(remote[owner], i)
			}
		}
	}

	if !s.allowEndpoint(s.batchBreaker, r) {
		s.answerDegraded(epBatch, w, r, systems, true, forwarded, "circuit_open",
			"batch engine circuit open: recent solves kept failing")
		return
	}
	release, ok := s.admit(epBatch, w, r)
	if !ok {
		// The request never reached the engine; return any half-open
		// probe slot breakerAllow reserved or the breaker wedges.
		s.breakerCancel(s.batchBreaker)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	ctx = faults.With(ctx, s.cfg.Injector)
	if s.beforeAnalyze != nil {
		s.beforeAnalyze()
	}
	results := make([]spec.ResultJSON, len(systems))

	// Peer sub-batches travel concurrently with the local solve; each
	// writes only its own request-order slots of results.
	owners := make([]string, 0, len(remote))
	for owner := range remote {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	groupErrs := make([]error, len(owners))
	var wg sync.WaitGroup
	for gi, owner := range owners {
		wg.Add(1)
		go func(gi int, owner string) {
			defer wg.Done()
			groupErrs[gi] = s.forwardSubBatch(ctx, r, owner, remote[owner], systems, results)
		}(gi, owner)
	}

	local := make([]int, 0, len(systems))
	isRemote := make([]bool, len(systems))
	for _, idx := range remote {
		for _, i := range idx {
			isRemote[i] = true
		}
	}
	for i := range systems {
		if !isRemote[i] {
			local = append(local, i)
		}
	}
	lerr := s.solveLocal(ctx, systems, local, results, forwarded, false)
	wg.Wait()
	s.breakerReport(s.batchBreaker, lerr)
	if lerr != nil {
		if s.cfg.Degraded && degradable(lerr) {
			s.answerDegraded(epBatch, w, r, systems, true, forwarded, "degraded",
				"engine failed and no complete cached answer exists: "+lerr.Error())
			return
		}
		s.fail(epBatch, w, r, lerr)
		return
	}

	// Failed peer groups fall back to local degraded solves so a dead
	// node never drops systems; with degraded mode off the peer failure
	// is terminal for the whole batch.
	degradedN, forwardedAny := 0, false
	for gi, owner := range owners {
		gerr := groupErrs[gi]
		if gerr == nil {
			forwardedAny = true
			continue
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			s.fail(epBatch, w, r, ctxErr)
			return
		}
		if !s.cfg.Degraded {
			s.fail(epBatch, w, r, gerr)
			return
		}
		obs.Logger(r.Context()).Warn("peer sub-batch failed, serving locally degraded",
			"peer", owner, "error", gerr.Error())
		if err := s.solveLocal(ctx, systems, remote[owner], results, forwarded, true); err != nil {
			if degradable(err) {
				s.answerDegraded(epBatch, w, r, systems, true, forwarded, "degraded",
					"engine failed and no complete cached answer exists: "+err.Error())
				return
			}
			s.fail(epBatch, w, r, err)
			return
		}
		degradedN += len(remote[owner])
	}

	s.metrics.analyses.Add(uint64(len(local) + degradedN))
	top := s.meta(forwarded || forwardedAny, false, "")
	for i := range results {
		if m := results[i].Meta; m != nil {
			top.Cache = spec.WorstCache(top.Cache, m.Cache)
			if m.Degraded {
				top.Degraded = true
			}
			if m.Anytime {
				top.Anytime = true
			}
		}
	}
	if degradedN > 0 {
		s.noteClusterDegraded(w, r, degradedN)
	}
	esp := obs.StartSpan(r.Context(), "encode")
	s.serveHeaders(w, r, forwarded)
	writeJSON(w, http.StatusOK, spec.BatchResponse{Results: results, Meta: top})
	esp.End(nil)
}

// solveLocal runs the systems at idx through the engine on this node,
// writing each result (with its meta block) into its request-order slot.
func (s *Server) solveLocal(ctx context.Context, systems []*spec.System, idx []int, results []spec.ResultJSON, forwarded, degraded bool) error {
	// With any anytime system in the group, the scheduling loop must not
	// abort at the deadline — every remaining system still gets its
	// certified partial answer. The per-system calls keep the real ctx
	// (closure below), so genuine cancellation still fails them, which
	// fails ForEach through the returned error.
	runCtx := ctx
	for _, i := range idx {
		if s.anytime(systems[i]) {
			runCtx = context.WithoutCancel(ctx)
			break
		}
	}
	return batch.ForEach(runCtx, len(idx), s.cfg.Workers, func(k int) error {
		i := idx[k]
		sys := systems[i]
		rs := &batch.RequestStats{}
		a, err := batch.AnalyzeOneContext(batch.WithRequestStats(ctx, rs),
			batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
			batch.Options{Cache: s.cache, Core: sys.Options, Retry: s.retry, ShareBoundaries: true,
				Kernel: s.cfg.Kernel, Anytime: s.anytime(sys)})
		if err != nil {
			return fmt.Errorf("systems[%d] (%s): %w", i, sys.Name, err)
		}
		results[i] = spec.Encode(sys.Name, a)
		results[i].Meta = s.meta(forwarded, degraded, rs.Source())
		if anyLowerBound(a) {
			results[i].Meta.Anytime = true
			s.metrics.anytimePartial.Inc()
		}
		if s.cfg.CompatV1Degraded && degraded {
			results[i].Degraded = true
		}
		return nil
	})
}

// forwardSubBatch re-marshals the systems at idx into one BatchRequest,
// forwards it to the owning peer, and scatters the peer's results back
// into their request-order slots. The peer sees the forwarded-from
// header and stamps each result's meta itself, so the scatter is
// verbatim — forwarded results are byte-identical to asking the owner.
func (s *Server) forwardSubBatch(ctx context.Context, r *http.Request, owner string, idx []int, systems []*spec.System, results []spec.ResultJSON) error {
	sub := spec.BatchRequest{Systems: make([]spec.File, len(idx))}
	for j, i := range idx {
		sub.Systems[j] = systems[i].File
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return fmt.Errorf("marshaling sub-batch for peer %q: %w", owner, err)
	}
	sp := obs.StartSpan(r.Context(), "forward")
	sp.Set("peer", owner)
	sp.Set("systems", strconv.Itoa(len(idx)))
	tr := obs.TraceFrom(r.Context())
	resp, err := s.router.Forward(ctx, owner, "/v1/batch", body, s.forwardHeader(r, tr, sp))
	if resp != nil {
		sp.Set("attempts", strconv.Itoa(resp.Attempts))
	}
	sp.Set("breaker", s.router.PeerStats(owner).Breaker.State)
	sp.End(err)
	if err != nil {
		return err
	}
	s.stitchRemoteSpans(tr, sp, resp)
	if resp.Status != http.StatusOK {
		return fmt.Errorf("peer %q answered sub-batch with status %d", owner, resp.Status)
	}
	var br spec.BatchResponse
	if err := json.Unmarshal(resp.Body, &br); err != nil {
		return fmt.Errorf("decoding sub-batch answer from peer %q: %w", owner, err)
	}
	if len(br.Results) != len(idx) {
		return fmt.Errorf("peer %q answered %d results for %d systems", owner, len(br.Results), len(idx))
	}
	for j, i := range idx {
		results[i] = br.Results[j]
	}
	return nil
}

// allowEndpoint consults an endpoint breaker under a trace span; a nil
// breaker always allows.
func (s *Server) allowEndpoint(b *faults.Breaker, r *http.Request) bool {
	sp := obs.StartSpan(r.Context(), "breaker")
	allowed := b == nil || b.Allow()
	sp.Set("allowed", strconv.FormatBool(allowed))
	sp.End(nil)
	if !allowed {
		obs.TraceFrom(r.Context()).SetAttr("breaker", "open")
	}
	return allowed
}

// breakerReport records an engine outcome on an endpoint breaker. Only
// engine verdicts count: a client mistake or a client cancellation says
// nothing about engine health, so it is recorded neither as a failure
// nor as a success — it only returns the probe slot it may have been
// holding while half-open.
func (s *Server) breakerReport(b *faults.Breaker, err error) {
	if b == nil {
		return
	}
	if err != nil && !degradable(err) {
		b.CancelProbe()
		return
	}
	b.Report(err != nil)
}

// breakerCancel returns a probe slot reserved by breakerAllow when the
// request never reached the engine; a nil breaker is a no-op.
func (s *Server) breakerCancel(b *faults.Breaker) {
	if b != nil {
		b.CancelProbe()
	}
}

// degradable reports whether an analysis failure is an engine-side
// condition a cached answer can stand in for — solver failures, injected
// faults, deadline expiry — as opposed to a client mistake (validation,
// unsupported norm) or the client going away.
func degradable(err error) bool {
	var ve *spec.ValidationError
	switch {
	case err == nil,
		errors.As(err, &ve),
		errors.Is(err, core.ErrNormUnsupported),
		errors.Is(err, context.Canceled):
		return false
	}
	return true
}

// answerDegraded is the degraded-mode responder: with Config.Degraded
// set it tries to assemble the full answer from the shared radius cache
// — every feature of every submitted system must be memoised — and
// serves it with meta.degraded set and a Warning header (plus the
// deprecated top-level "degraded" marker when CompatV1Degraded is on).
// The cached values are exactly what a healthy engine would recompute,
// so a degraded 200 is byte-identical to the fault-free response modulo
// the meta block. On a true cache miss (or with degraded mode off) it
// sheds with 503 + Retry-After and the given error kind.
func (s *Server) answerDegraded(endpoint string, w http.ResponseWriter, r *http.Request, systems []*spec.System, batchShape, forwarded bool, kind, reason string) {
	tr := obs.TraceFrom(r.Context())
	if s.cfg.Degraded {
		sp := obs.StartSpan(r.Context(), "degraded_lookup")
		results, ok := s.cachedResults(systems, forwarded)
		sp.Set("served", strconv.FormatBool(ok))
		sp.End(nil)
		if ok {
			s.metrics.degraded.Inc()
			tr.SetAttr("outcome", "degraded")
			tr.SetAttr("degraded", "true")
			obs.Logger(r.Context()).Warn("serving degraded from radius cache", "reason", kind)
			w.Header().Set("Warning", `199 fepiad "degraded: served from radius cache"`)
			s.serveHeaders(w, r, forwarded)
			if batchShape {
				writeJSON(w, http.StatusOK, spec.BatchResponse{Results: results,
					Meta: s.meta(forwarded, true, spec.CacheHit)})
			} else {
				writeJSON(w, http.StatusOK, results[0])
			}
			return
		}
	}
	tr.SetAttr("outcome", kind)
	s.metrics.errs[endpoint].Inc()
	s.retryAfterHeader(w)
	writeError(w, http.StatusServiceUnavailable, spec.ErrorJSON{Error: reason, Kind: kind})
}

// cachedResults assembles one degraded ResultJSON per system purely from
// the radius cache, or reports ok=false when any feature misses.
func (s *Server) cachedResults(systems []*spec.System, forwarded bool) ([]spec.ResultJSON, bool) {
	results := make([]spec.ResultJSON, len(systems))
	for i, sys := range systems {
		a, ok := batch.AnalyzeCached(batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
			batch.Options{Cache: s.cache, Core: sys.Options, ShareBoundaries: true})
		if !ok {
			return nil, false
		}
		results[i] = spec.Encode(sys.Name, a)
		results[i].Meta = s.meta(forwarded, true, spec.CacheHit)
		if s.cfg.CompatV1Degraded {
			results[i].Degraded = true
		}
	}
	return results, true
}

// fail maps an analysis error onto the HTTP error contract (see the
// package comment) and writes the ErrorJSON envelope.
func (s *Server) fail(endpoint string, w http.ResponseWriter, r *http.Request, err error) {
	s.metrics.errs[endpoint].Inc()
	status, kind, path := http.StatusInternalServerError, "internal", ""
	var ve *spec.ValidationError
	var se *core.SolveError
	var pe *PeerError
	switch {
	case errors.As(err, &ve):
		status, kind, path = http.StatusBadRequest, "invalid_spec", ve.Path
	case errors.Is(err, core.ErrNormUnsupported):
		status, kind = http.StatusBadRequest, "unsupported"
	case errors.Is(err, context.DeadlineExceeded):
		status, kind = http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		// The client went away or the server is force-draining; the
		// status is mostly for the access log.
		status, kind = http.StatusServiceUnavailable, "shutting_down"
	case errors.As(err, &se):
		status, kind = http.StatusInternalServerError, "solver_failure"
	case errors.As(err, &pe):
		// A ring owner could not be reached and degraded serving is off.
		if errors.Is(err, cluster.ErrPeerOpen) {
			status, kind = http.StatusServiceUnavailable, "peer_circuit_open"
			s.retryAfterHeader(w)
		} else {
			status, kind = http.StatusBadGateway, "peer_unreachable"
		}
	}
	obs.TraceFrom(r.Context()).SetAttr("outcome", kind)
	if status >= http.StatusInternalServerError {
		obs.Logger(r.Context()).Error("analysis failed", "kind", kind, "error", err.Error())
	}
	writeError(w, status, spec.ErrorJSON{Error: err.Error(), Kind: kind, Path: path})
}

// writeJSON writes a 2xx JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the ErrorJSON envelope.
func writeError(w http.ResponseWriter, status int, e spec.ErrorJSON) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}
