// Package server is fepiad's HTTP layer: a stdlib-only service that
// evaluates the robustness metric ρ_μ(Φ, π) on demand over the concurrent
// batch engine. It accepts internal/spec JSON system descriptions on
// POST /v1/analyze (one system) and POST /v1/batch (many systems, fanned
// over the worker pool), shares one process-wide radius cache across every
// request so structurally identical subproblems are solved once, and
// answers with the same spec.ResultJSON documents the CLIs emit — served
// and in-process analyses are byte-identical.
//
// Production posture: every request runs under a deadline and a body-size
// limit; a bounded admission gate sheds load with 503 + Retry-After
// instead of queueing unboundedly; Run drains in-flight analyses on
// shutdown and force-cancels them via context if the drain budget runs
// out; /healthz answers liveness probes; /debug/vars serves
// expvar-compatible operational counters; /debug/pprof is available
// behind Config.EnablePprof.
//
// Error discipline: client mistakes (spec.ValidationError) map to 400
// with the offending JSON field path; unsupported analysis combinations
// (core.ErrNormUnsupported) to 400; deadline expiry to 504; shutdown and
// overload to 503; engine failures (core.SolveError) to 500. Every
// non-2xx body is a spec.ErrorJSON envelope.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"fepia/internal/batch"
	"fepia/internal/core"
	"fepia/internal/spec"
)

// Defaults applied by New for zero-valued Config fields.
const (
	DefaultMaxBodyBytes = 4 << 20
	DefaultTimeout      = 30 * time.Second
	DefaultMaxInFlight  = 64
	DefaultRetryAfter   = 1 * time.Second
	DefaultDrainTimeout = 10 * time.Second
)

// Config tunes a Server. The zero value is production-safe: every limit
// falls back to the package defaults above.
type Config struct {
	// MaxBodyBytes bounds a request body; larger bodies are rejected
	// with 400 before parsing.
	MaxBodyBytes int64
	// Timeout is the per-request analysis deadline.
	Timeout time.Duration
	// MaxInFlight bounds concurrently admitted /v1/ requests; excess
	// requests are shed immediately with 503 + Retry-After.
	MaxInFlight int
	// RetryAfter is the Retry-After hint attached to 503 responses.
	RetryAfter time.Duration
	// Workers bounds the analysis worker pool of one /v1/batch request
	// (≤ 0 selects GOMAXPROCS).
	Workers int
	// CacheCapacity bounds the shared radius cache (≤ 0 selects
	// batch.DefaultCacheCapacity).
	CacheCapacity int
	// DrainTimeout is how long Run waits for in-flight requests after
	// shutdown is requested before force-cancelling their analyses.
	DrainTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Log receives request-independent server events; nil selects the
	// default logger.
	Log *log.Logger
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the fepiad HTTP service. Create one with New; it is safe for
// concurrent use and all its state (the radius cache, the admission gate,
// the counters) is shared across every request it serves.
type Server struct {
	cfg     Config
	cache   *batch.Cache
	gate    chan struct{}
	metrics metrics
	mux     *http.ServeMux

	// baseCtx is the ancestor of every request context; baseCancel
	// force-cancels all in-flight analyses when the drain budget is
	// exhausted during shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// beforeAnalyze, when non-nil, runs after a request is admitted and
	// parsed but before its analysis starts. Tests use it to hold
	// requests in flight deterministically.
	beforeAnalyze func()
}

// New builds a Server from cfg (zero value ok).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: batch.NewCache(cfg.CacheCapacity),
		gate:  make(chan struct{}, cfg.MaxInFlight),
		mux:   http.NewServeMux(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the server's route table, ready to mount on any
// http.Server (or an httptest.Server in tests).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats snapshots the shared radius cache's counters.
func (s *Server) CacheStats() batch.CacheStats { return s.cache.Stats() }

// Run serves on l until ctx is cancelled (SIGTERM in cmd/fepiad), then
// shuts down gracefully: the listener closes, in-flight requests get
// Config.DrainTimeout to finish, and any analysis still running after the
// drain budget is force-cancelled through its context. It returns nil on
// a clean drain.
func (s *Server) Run(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
		ErrorLog:          s.cfg.Log,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()

	select {
	case err := <-serveErr:
		s.baseCancel()
		return err
	case <-ctx.Done():
	}

	s.cfg.Log.Printf("shutting down, draining for up to %v", s.cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(drainCtx)
	if err != nil {
		// Drain budget exhausted: cancel every in-flight analysis via the
		// request contexts and close remaining connections.
		s.cfg.Log.Printf("drain timed out, cancelling in-flight analyses")
		s.baseCancel()
		err = errors.Join(err, hs.Close())
	}
	s.baseCancel()
	<-serveErr // always http.ErrServerClosed after Shutdown/Close
	return err
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\": \"ok\", \"in_flight\": %d}\n", s.metrics.inFlight.Load())
}

// handleVars serves the expvar-compatible counter document.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	s.writeVars(w)
}

// admit reserves an in-flight slot, or sheds the request with 503 +
// Retry-After when the gate is saturated. The returned release func must
// be called exactly once iff admitted.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	select {
	case s.gate <- struct{}{}:
		s.metrics.inFlight.Add(1)
		return func() {
			s.metrics.inFlight.Add(-1)
			<-s.gate
		}, true
	default:
		s.metrics.rejected.Add(1)
		s.metrics.errs.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second)))
		writeError(w, http.StatusServiceUnavailable, spec.ErrorJSON{
			Error: "server saturated: too many analyses in flight",
			Kind:  "overloaded",
		})
		return nil, false
	}
}

// readBody reads a size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.metrics.errs.Add(1)
		status, kind := http.StatusBadRequest, "invalid_spec"
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status, kind = http.StatusRequestEntityTooLarge, "invalid_spec"
		}
		writeError(w, status, spec.ErrorJSON{Error: "reading body: " + err.Error(), Kind: kind})
		return nil, false
	}
	return body, true
}

// handleAnalyze serves POST /v1/analyze: one spec document in, one
// ResultJSON out, identical to the in-process library path.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sys, err := spec.Parse(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	defer func() { s.metrics.observe(time.Since(start)) }()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if s.beforeAnalyze != nil {
		s.beforeAnalyze()
	}
	a, err := batch.AnalyzeOneContext(ctx, batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
		batch.Options{Cache: s.cache, Core: sys.Options})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.metrics.analyses.Add(1)
	writeJSON(w, http.StatusOK, spec.Encode(sys.Name, a))
}

// handleBatch serves POST /v1/batch: many systems fanned over the batch
// engine's worker pool against the shared radius cache, results in
// request order. Each system keeps its own norm/options, so the fan-out
// runs per-system jobs (batch.AnalyzeOneContext) over the engine's
// scheduling substrate rather than one homogeneous batch.Analyze call.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.requests.Add(1)
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	systems, err := spec.ParseBatch(body)
	if err != nil {
		s.fail(w, err)
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	defer func() { s.metrics.observe(time.Since(start)) }()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if s.beforeAnalyze != nil {
		s.beforeAnalyze()
	}
	results := make([]spec.ResultJSON, len(systems))
	err = batch.ForEach(ctx, len(systems), s.cfg.Workers, func(i int) error {
		sys := systems[i]
		a, err := batch.AnalyzeOneContext(ctx, batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
			batch.Options{Cache: s.cache, Core: sys.Options})
		if err != nil {
			return fmt.Errorf("systems[%d] (%s): %w", i, sys.Name, err)
		}
		results[i] = spec.Encode(sys.Name, a)
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.metrics.analyses.Add(uint64(len(systems)))
	writeJSON(w, http.StatusOK, spec.BatchResponse{Results: results})
}

// fail maps an analysis error onto the HTTP error contract (see the
// package comment) and writes the ErrorJSON envelope.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.metrics.errs.Add(1)
	status, kind, path := http.StatusInternalServerError, "internal", ""
	var ve *spec.ValidationError
	var se *core.SolveError
	switch {
	case errors.As(err, &ve):
		status, kind, path = http.StatusBadRequest, "invalid_spec", ve.Path
	case errors.Is(err, core.ErrNormUnsupported):
		status, kind = http.StatusBadRequest, "unsupported"
	case errors.Is(err, context.DeadlineExceeded):
		status, kind = http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		// The client went away or the server is force-draining; the
		// status is mostly for the access log.
		status, kind = http.StatusServiceUnavailable, "shutting_down"
	case errors.As(err, &se):
		status, kind = http.StatusInternalServerError, "solver_failure"
	}
	writeError(w, status, spec.ErrorJSON{Error: err.Error(), Kind: kind, Path: path})
}

// writeJSON writes a 2xx JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the ErrorJSON envelope.
func writeError(w http.ResponseWriter, status int, e spec.ErrorJSON) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}
