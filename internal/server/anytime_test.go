package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fepia/internal/spec"
)

// anytimeSpec is a convex system whose numeric feature cannot converge
// once the deadline is gone — the shape that turns into a certified
// partial answer instead of a 504.
const anytimeSpec = `{
  "name": "anytime",
  "perturbation": {"name": "λ", "orig": [300, 200], "units": "req/s"},
  "features": [
    {"name": "work(db)", "max": 250000,
     "impact": {"type": "terms", "terms": [
       {"kind": "power", "index": 0, "coeff": 1.5, "p": 2},
       {"kind": "xlogx", "index": 1, "coeff": 40}
     ]}}
  ]
}`

// requirePartial decodes a served result and asserts the anytime partial
// shape: meta.anytime set, at least one radius with "bound": "lower".
func requirePartial(t *testing.T, body []byte) spec.ResultJSON {
	t.Helper()
	var res spec.ResultJSON
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("result not JSON: %v (%s)", err, body)
	}
	if res.Meta == nil || !res.Meta.Anytime {
		t.Fatalf("meta.anytime not set on a partial answer: %s", body)
	}
	lower := false
	for _, r := range res.Radii {
		if r.Kind == "lower" {
			lower = true
		}
	}
	if !lower {
		t.Fatalf("no \"bound\": \"lower\" radius in partial answer: %s", body)
	}
	return res
}

// With -anytime, a deadline expiry is a 200 carrying the best certified
// lower bound, not a 504 — and the partial is visible on the counters.
func TestAnytimeDeadlineServes200(t *testing.T) {
	s := New(quietConfig(Config{Timeout: 30 * time.Millisecond, Anytime: true}))
	s.beforeAnalyze = func() { time.Sleep(60 * time.Millisecond) } // burn the whole deadline
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", anytimeSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (%s)", resp.StatusCode, body)
	}
	requirePartial(t, body)

	vars := getVars(t, ts.URL)
	if n, _ := vars["fepiad.anytime_partial"].(float64); n != 1 {
		t.Fatalf("fepiad.anytime_partial = %v, want 1", vars["fepiad.anytime_partial"])
	}
}

// The per-request opt-in: a spec with "anytime": true gets the partial
// contract on a server that never enabled -anytime.
func TestAnytimePerRequestOptIn(t *testing.T) {
	s := New(quietConfig(Config{Timeout: 30 * time.Millisecond}))
	s.beforeAnalyze = func() { time.Sleep(60 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := `{"anytime": true,` + anytimeSpec[1:]
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (%s)", resp.StatusCode, body)
	}
	requirePartial(t, body)

	// The same server without the field keeps the strict 504 contract.
	resp, body = postJSON(t, ts.URL+"/v1/analyze", anytimeSpec)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("non-anytime request: status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "timeout" {
		t.Fatalf("kind %q, want timeout", e.Kind)
	}
}

// Batch serving: a deadline expiry mid-batch yields partials for the
// affected systems and sets the top-level meta.anytime fold — while the
// exact systems in the same batch stay exact.
func TestAnytimeBatchPartial(t *testing.T) {
	s := New(quietConfig(Config{Timeout: 30 * time.Millisecond, Anytime: true}))
	s.beforeAnalyze = func() { time.Sleep(60 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"systems": [` + anytimeSpec + `,` + linearSpec(7) + `]}`
	resp, data := postJSON(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (%s)", resp.StatusCode, data)
	}
	var br spec.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 {
		t.Fatalf("%d results, want 2", len(br.Results))
	}
	if br.Meta == nil || !br.Meta.Anytime {
		t.Fatalf("top-level meta.anytime not folded: %s", data)
	}
	if br.Results[0].Meta == nil || !br.Results[0].Meta.Anytime {
		t.Fatalf("convex system not marked partial: %+v", br.Results[0].Meta)
	}
	// The all-linear system is closed-form: exact despite the deadline.
	if br.Results[1].Meta != nil && br.Results[1].Meta.Anytime {
		t.Fatalf("linear system needlessly marked partial: %+v", br.Results[1].Meta)
	}
	for _, r := range br.Results[1].Radii {
		if r.Kind == "lower" {
			t.Fatalf("linear system degraded to a bound: %+v", br.Results[1].Radii)
		}
	}
}

// Anytime mode changes nothing when the deadline holds: the answer and
// its meta stay identical to plain serving.
func TestAnytimeNoOpWhenFast(t *testing.T) {
	plain := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer plain.Close()
	anytime := httptest.NewServer(New(quietConfig(Config{Anytime: true})).Handler())
	defer anytime.Close()

	_, wantBody := postJSON(t, plain.URL+"/v1/analyze", webFarm)
	resp, gotBody := postJSON(t, anytime.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, gotBody)
	}
	if string(gotBody) != string(wantBody) {
		t.Fatalf("anytime serving altered an unhurried answer:\n got %s\nwant %s", gotBody, wantBody)
	}
}
