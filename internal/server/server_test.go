package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fepia/internal/core"
	"fepia/internal/spec"
)

// webFarm is the reference round-trip document of docs/SERVICE.md.
const webFarm = `{
  "name": "web farm",
  "perturbation": {"name": "λ", "orig": [300, 200], "units": "req/s"},
  "features": [
    {"name": "load(edge)", "max": 1100,
     "impact": {"type": "linear", "coeffs": [1, 1], "offset": 0}},
    {"name": "work(db)", "max": 250000,
     "impact": {"type": "terms", "terms": [
       {"kind": "power", "index": 0, "coeff": 1.5, "p": 2},
       {"kind": "xlogx", "index": 1, "coeff": 40}
     ]}}
  ]
}`

// linearSpec builds a small all-linear system document whose coefficients
// depend on k, so distinct k give distinct cache subproblems and repeated
// k hit the shared cache.
func linearSpec(k int) string {
	return fmt.Sprintf(`{
	  "name": "sys-%d",
	  "perturbation": {"name": "C", "orig": [6, 4, 8], "units": "s"},
	  "features": [
	    {"name": "finish(m0)", "max": %d, "impact": {"type": "linear", "coeffs": [1, 1, 0]}},
	    {"name": "finish(m1)", "max": %d, "impact": {"type": "linear", "coeffs": [0, 0, 1]}}
	  ]
	}`, k, 13+k%5, 13+k%3)
}

// quietConfig silences server logs during tests.
func quietConfig(c Config) Config {
	c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	return c
}

// libraryResult computes the in-process (facade-path) result document for
// one spec source.
func libraryResult(t *testing.T, doc string) spec.ResultJSON {
	t.Helper()
	sys, err := spec.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		t.Fatal(err)
	}
	return spec.Encode(sys.Name, a)
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// decodeError decodes an ErrorJSON envelope.
func decodeError(t *testing.T, data []byte) spec.ErrorJSON {
	t.Helper()
	var e spec.ErrorJSON
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error envelope not JSON: %v (%s)", err, data)
	}
	return e
}

// TestAnalyzeRoundTrip proves a served analysis is DeepEqual — and, after
// re-marshalling, byte-identical — to the in-process library result,
// modulo the ResponseMeta block only fepiad emits.
func TestAnalyzeRoundTrip(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var served spec.ResultJSON
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("response not a ResultJSON: %v", err)
	}
	if served.Meta == nil {
		t.Fatal("served result carries no meta block")
	}
	if served.Meta.Cache != spec.CacheMiss {
		t.Fatalf("cold analyze meta.cache = %q, want %q", served.Meta.Cache, spec.CacheMiss)
	}
	if served.Meta.Forwarded || served.Meta.Degraded {
		t.Fatalf("solo serve stamped cluster markers: %+v", served.Meta)
	}
	served.Meta = nil
	want := libraryResult(t, webFarm)
	if !reflect.DeepEqual(served, want) {
		t.Fatalf("served result differs from library path:\n got %+v\nwant %+v", served, want)
	}
	gotB, _ := json.Marshal(served)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("served document not byte-identical:\n got %s\nwant %s", gotB, wantB)
	}
}

// TestBatchConcurrentSharedCache hammers /v1/batch from several goroutines
// with overlapping systems and checks every result equals the library
// path byte-for-byte while the process-wide cache collects hits.
func TestBatchConcurrentSharedCache(t *testing.T) {
	s := New(quietConfig(Config{Workers: 4}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 6 distinct systems, each appearing in several requests.
	want := make([][]byte, 6)
	for k := range want {
		b, err := json.Marshal(libraryResult(t, linearSpec(k)))
		if err != nil {
			t.Fatal(err)
		}
		want[k] = b
	}

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var docs []string
			for i := 0; i < 10; i++ {
				docs = append(docs, linearSpec((c+i)%len(want)))
			}
			body := `{"systems": [` + strings.Join(docs, ",") + `]}`
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, data)
				return
			}
			var br spec.BatchResponse
			if err := json.Unmarshal(data, &br); err != nil {
				errs <- fmt.Errorf("client %d: %v", c, err)
				return
			}
			if len(br.Results) != 10 {
				errs <- fmt.Errorf("client %d: %d results, want 10", c, len(br.Results))
				return
			}
			for i, r := range br.Results {
				if r.Meta == nil || r.Meta.Cache == "" {
					errs <- fmt.Errorf("client %d result %d: missing meta/cache provenance: %+v", c, i, r.Meta)
					return
				}
				r.Meta = nil
				got, _ := json.Marshal(r)
				if !bytes.Equal(got, want[(c+i)%len(want)]) {
					errs <- fmt.Errorf("client %d result %d:\n got %s\nwant %s", c, i, got, want[(c+i)%len(want)])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cs := s.CacheStats(); cs.Hits == 0 {
		t.Errorf("shared cache collected no hits across %d overlapping batches: %+v", clients, cs)
	}
}

// TestMalformedSpec400 maps every client mistake to 400 with the typed
// error envelope and the offending JSON field path.
func TestMalformedSpec400(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	cases := []struct {
		name, endpoint, body, wantPath string
	}{
		{"malformed JSON", "/v1/analyze", `{`, ""},
		{"no features", "/v1/analyze", `{"perturbation":{"orig":[1]}}`, "features"},
		{"unknown norm", "/v1/analyze", `{"perturbation":{"orig":[1]},"norm":"l7","features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`, "norm"},
		{"bad coeffs", "/v1/analyze", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"linear","coeffs":[1,2]}}]}`, "features[0].impact.coeffs"},
		{"empty batch", "/v1/batch", `{"systems":[]}`, "systems"},
		{"bad batch entry", "/v1/batch", `{"systems":[` + linearSpec(0) + `,{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"magic"}}]}]}`, "systems[1].features[0].impact.type"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.endpoint, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		e := decodeError(t, body)
		if e.Kind != "invalid_spec" {
			t.Errorf("%s: kind %q, want invalid_spec", tc.name, e.Kind)
		}
		if e.Path != tc.wantPath {
			t.Errorf("%s: path %q, want %q", tc.name, e.Path, tc.wantPath)
		}
	}
}

// TestUnsupportedNorm400 maps the engine's ErrNormUnsupported (a client
// request for an unsupported combination) to 400, not 500.
func TestUnsupportedNorm400(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	doc := `{"perturbation":{"orig":[2,2]},"norm":"l1","features":[
	  {"max":100,"impact":{"type":"terms","terms":[{"kind":"power","index":0,"coeff":1,"p":2}]}}]}`
	resp, body := postJSON(t, ts.URL+"/v1/analyze", doc)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "unsupported" {
		t.Fatalf("kind %q, want unsupported (%s)", e.Kind, body)
	}
}

// TestDeadlineExceeded504 proves the per-request deadline cancels the
// analysis through its context.
func TestDeadlineExceeded504(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{Timeout: time.Nanosecond})).Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "timeout" {
		t.Fatalf("kind %q, want timeout", e.Kind)
	}
}

// TestSaturation503 fills the admission gate and checks excess requests
// are shed immediately with Retry-After while the admitted one completes.
func TestSaturation503(t *testing.T) {
	s := New(quietConfig(Config{MaxInFlight: 1, RetryAfter: 3 * time.Second}))
	entered := make(chan struct{})
	release := make(chan struct{})
	s.beforeAnalyze = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(linearSpec(1)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("first request: status %d", resp.StatusCode)
			}
		}
		first <- err
	}()
	<-entered // the only slot is now held

	resp, body := postJSON(t, ts.URL+"/v1/analyze", linearSpec(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "overloaded" {
		t.Errorf("kind %q, want overloaded", e.Kind)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if s.metrics.rejected.Value() == 0 {
		t.Error("rejected counter did not move")
	}
}

// TestGracefulShutdownDrain sends a shutdown while a request is in flight
// and checks the request still completes (drained, not killed) and the
// listener stops accepting new work.
func TestGracefulShutdownDrain(t *testing.T) {
	s := New(quietConfig(Config{DrainTimeout: 5 * time.Second}))
	entered := make(chan struct{})
	release := make(chan struct{})
	s.beforeAnalyze = func() {
		entered <- struct{}{}
		<-release
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, l) }()
	url := "http://" + l.Addr().String()

	inFlight := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/analyze", "application/json", strings.NewReader(linearSpec(3)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request: status %d", resp.StatusCode)
			}
		}
		inFlight <- err
	}()
	<-entered

	stop() // SIGTERM
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request was not drained: %v", err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestDrainTimeoutCancelsAnalyses exhausts the drain budget and checks the
// stuck in-flight analysis is force-cancelled through its context.
func TestDrainTimeoutCancelsAnalyses(t *testing.T) {
	s := New(quietConfig(Config{DrainTimeout: 50 * time.Millisecond}))
	entered := make(chan struct{})
	release := make(chan struct{})
	s.beforeAnalyze = func() {
		entered <- struct{}{}
		<-release
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, l) }()
	url := "http://" + l.Addr().String()

	clientDone := make(chan struct{})
	go func() {
		resp, err := http.Post(url+"/v1/analyze", "application/json", strings.NewReader(linearSpec(4)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(clientDone)
	}()
	<-entered

	stop()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Run returned %v, want drain-deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not give up after the drain budget")
	}

	// The handler is still parked in the test hook; once released, its
	// analysis must observe the cancelled base context immediately.
	close(release)
	<-clientDone
	deadline := time.Now().Add(2 * time.Second)
	for s.metrics.errsTotal() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight analysis was never cancelled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthzAndVars exercises the operational endpoints.
func TestHealthzAndVars(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		InFlight int    `json:"in_flight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	if resp, body := postJSON(t, ts.URL+"/v1/analyze", webFarm); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", resp.StatusCode, body)
	}
	// A second, cache-hitting analysis so the cache counters move.
	postJSON(t, ts.URL+"/v1/analyze", webFarm)

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	resp.Body.Close()
	if got := vars["fepiad.requests"].(float64); got < 2 {
		t.Errorf("fepiad.requests = %v, want ≥ 2", got)
	}
	if got := vars["fepiad.analyses"].(float64); got < 2 {
		t.Errorf("fepiad.analyses = %v, want ≥ 2", got)
	}
	cache, ok := vars["fepiad.cache"].(map[string]any)
	if !ok || cache["hits"].(float64) == 0 {
		t.Errorf("fepiad.cache shows no hits after a repeated analysis: %v", vars["fepiad.cache"])
	}
	lat, ok := vars["fepiad.latency_ms"].(map[string]any)
	if !ok || lat["count"].(float64) < 2 {
		t.Errorf("fepiad.latency_ms histogram missing observations: %v", vars["fepiad.latency_ms"])
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("global expvar variables (memstats) not re-exported")
	}
	// Resilience counters are always present (zero on a healthy run) so
	// dashboards can rely on them.
	for _, key := range []string{"fepiad.retries", "fepiad.degraded"} {
		if got, ok := vars[key].(float64); !ok {
			t.Errorf("%s missing from /debug/vars", key)
		} else if got != 0 {
			t.Errorf("%s = %v on a healthy run, want 0", key, got)
		}
	}
	for _, key := range []string{"fepiad.breaker.analyze", "fepiad.breaker.batch"} {
		b, ok := vars[key].(map[string]any)
		if !ok {
			t.Errorf("%s missing from /debug/vars", key)
			continue
		}
		if state := b["state"]; state != "closed" {
			t.Errorf("%s.state = %v on a healthy run, want closed", key, state)
		}
	}
}

// TestBodyLimit rejects oversized bodies before parsing.
func TestBodyLimit(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{MaxBodyBytes: 64})).Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/analyze", webFarm)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestMethodNotAllowed: the v1 routes only accept POST.
func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/analyze: status %d, want 405", resp.StatusCode)
	}
}
