package server

// End-to-end tests of the observability surfaces: the Prometheus text
// exposition on /metrics, its agreement with the expvar document on
// /debug/vars (both read the same obs.Registry instruments), the
// per-endpoint latency split, and the per-stage request traces on
// /debug/traces — including retry-attempt counts on solve spans when the
// fault harness makes the engine stumble.

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fepia/internal/faults"
	"fepia/internal/obs"
)

// metricLine matches one Prometheus sample line: name, optional labels,
// a float value, and an optional OpenMetrics-style exemplar suffix
// (` # {trace_id="…"} <value>`) on histogram bucket lines.
var metricLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)( # \{trace_id="[0-9a-f]{16}"\} [-+0-9.eE]+)?$`)

// scrape fetches and parses /metrics into name{labels} → value, failing
// the test on any line that is not valid text exposition.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples := make(map[string]float64)
	typed := make(map[string]bool) // families announced by a # TYPE line
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) >= 4 && f[1] == "TYPE" {
				typed[f[2]] = true
			}
			continue
		}
		m := metricLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("invalid exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			switch m[3] {
			case "+Inf":
				v = math.Inf(1)
			case "-Inf":
				v = math.Inf(-1)
			default:
				v = math.NaN()
			}
		}
		samples[m[1]+m[2]] = v
		// Histogram sample names carry a _bucket/_sum/_count suffix off
		// the family's # TYPE name.
		family := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(family, suf); ok && typed[base] {
				family = base
				break
			}
		}
		if !typed[family] {
			t.Errorf("sample %q has no preceding # TYPE line", line)
		}
	}
	return samples
}

// debugVars fetches and decodes /debug/vars.
func debugVars(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	return vars
}

// traces fetches and decodes /debug/traces.
func traces(t *testing.T, url string) obs.RingSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v", err)
	}
	return snap
}

// TestMetricsExpositionAgreesWithVars drives both /v1/ endpoints, then
// checks the Prometheus document parses, splits latency per endpoint,
// and agrees with /debug/vars on every shared counter — the two surfaces
// read the same registry instruments, so disagreement is a bug by
// construction.
func TestMetricsExpositionAgreesWithVars(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", linearSpec(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	batchBody := `{"systems": [` + linearSpec(0) + `,` + linearSpec(7) + `]}`
	if resp, body := postJSON(t, ts.URL+"/v1/batch", batchBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d (%s)", resp.StatusCode, body)
	}

	m := scrape(t, ts.URL)
	want := map[string]float64{
		`fepiad_requests_total{endpoint="analyze"}`:            2,
		`fepiad_requests_total{endpoint="batch"}`:              1,
		`fepiad_request_duration_ms_count{endpoint="analyze"}`: 2,
		`fepiad_request_duration_ms_count{endpoint="batch"}`:   1,
		`fepiad_analyses_total`:                                4, // 2 single + 1 batch of 2
		`fepiad_errors_total{endpoint="analyze"}`:              0,
		`fepiad_in_flight`:                                     0,
		`fepiad_breaker_state{endpoint="analyze"}`:             0, // closed
	}
	for series, v := range want {
		if got, ok := m[series]; !ok || got != v {
			t.Errorf("%s = %v (present=%v), want %v", series, got, ok, v)
		}
	}
	// The +Inf bucket of a histogram equals its _count.
	if inf := m[`fepiad_request_duration_ms_bucket{endpoint="analyze",le="+Inf"}`]; inf != 2 {
		t.Errorf("analyze +Inf bucket = %v, want 2", inf)
	}
	if m[`fepiad_cache_misses`] <= 0 {
		t.Errorf("fepiad_cache_misses = %v, want > 0", m[`fepiad_cache_misses`])
	}

	vars := debugVars(t, ts.URL)
	agreements := []struct {
		varKey string
		series float64
	}{
		{"fepiad.requests", m[`fepiad_requests_total{endpoint="analyze"}`] + m[`fepiad_requests_total{endpoint="batch"}`]},
		{"fepiad.analyses", m[`fepiad_analyses_total`]},
		{"fepiad.rejected", m[`fepiad_rejected_total`]},
		{"fepiad.retries", m[`fepiad_retries_total`]},
		{"fepiad.degraded", m[`fepiad_degraded_total`]},
	}
	for _, a := range agreements {
		got, ok := vars[a.varKey].(float64)
		if !ok || got != a.series {
			t.Errorf("/debug/vars %s = %v (present=%v), want %v (per /metrics)", a.varKey, vars[a.varKey], ok, a.series)
		}
	}

	// Per-endpoint latency split in the expvar document: the aggregate is
	// the merge of the two endpoint histograms.
	count := func(key string) float64 {
		h, _ := vars[key].(map[string]any)
		c, _ := h["count"].(float64)
		return c
	}
	if c := count("fepiad.latency_ms.analyze"); c != 2 {
		t.Errorf("fepiad.latency_ms.analyze count = %v, want 2", c)
	}
	if c := count("fepiad.latency_ms.batch"); c != 1 {
		t.Errorf("fepiad.latency_ms.batch count = %v, want 1", c)
	}
	if agg, split := count("fepiad.latency_ms"), count("fepiad.latency_ms.analyze")+count("fepiad.latency_ms.batch"); agg != split {
		t.Errorf("aggregate latency count %v != sum of endpoint counts %v", agg, split)
	}
}

// TestTraceStages sends one traced request per endpoint and checks
// /debug/traces records it under the caller's X-Request-Id with a span
// for every pipeline stage.
func TestTraceStages(t *testing.T) {
	ts := httptest.NewServer(New(quietConfig(Config{})).Handler())
	defer ts.Close()

	req, err := http.NewRequest("POST", ts.URL+"/v1/analyze", strings.NewReader(linearSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "trace-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-e2e-1" {
		t.Errorf("X-Request-Id echoed as %q, want trace-e2e-1", got)
	}

	snap := traces(t, ts.URL)
	var tr *obs.TraceData
	for i := range snap.Recent {
		if snap.Recent[i].ID == "trace-e2e-1" {
			tr = &snap.Recent[i]
			break
		}
	}
	if tr == nil {
		t.Fatalf("trace-e2e-1 not in /debug/traces (have %d recent)", len(snap.Recent))
	}
	if tr.Endpoint != "analyze" || tr.Status != http.StatusOK {
		t.Errorf("trace endpoint/status = %s/%d, want analyze/200", tr.Endpoint, tr.Status)
	}
	stages := make(map[string]int)
	for _, sp := range tr.Spans {
		stages[sp.Name]++
	}
	// linearSpec has two features: two cache_get spans (both misses on a
	// fresh server, so two cache_put spans) inside two solve spans.
	for stage, n := range map[string]int{
		"parse": 1, "breaker": 1, "admit": 1, "encode": 1,
		"solve": 2, "cache_get": 2, "cache_put": 2,
	} {
		if stages[stage] != n {
			t.Errorf("stage %q: %d spans, want %d (have %v)", stage, stages[stage], n, stages)
		}
	}
	for _, sp := range tr.Spans {
		if sp.Name == "solve" && sp.Retries != 0 {
			t.Errorf("fault-free solve span carries %d retries", sp.Retries)
		}
	}

	// A request without an X-Request-Id gets a generated one, also traced.
	resp2, _ := postJSON(t, ts.URL+"/v1/analyze", linearSpec(1))
	if rid := resp2.Header.Get("X-Request-Id"); rid == "" {
		t.Error("no X-Request-Id generated for untagged request")
	} else if got := traces(t, ts.URL); got.Recent[0].ID != rid {
		t.Errorf("newest trace ID = %q, want generated %q", got.Recent[0].ID, rid)
	}
}

// TestTraceSolveRetries injects one transient solve fault per feature via
// an exact script and checks the solve spans of the traced batch request
// record the retry attempts the policy spent recovering.
func TestTraceSolveRetries(t *testing.T) {
	inj := faults.NewScript().
		At(faults.Solve, 1, faults.KindError).
		At(faults.Solve, 3, faults.KindPanic)
	s := New(quietConfig(Config{Injector: inj, Workers: 1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"systems": [` + linearSpec(5) + `]}`
	resp, out := postJSON(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after retries (%s)", resp.StatusCode, out)
	}

	snap := traces(t, ts.URL)
	if len(snap.Recent) == 0 {
		t.Fatal("no traces recorded")
	}
	var retried int
	for _, sp := range snap.Recent[0].Spans {
		if sp.Name == "solve" && sp.Retries > 0 {
			retried++
		}
	}
	// Faults fired on solve calls 1 and 3: with one worker both features
	// retried exactly once, and both spans must say so.
	if retried != 2 {
		t.Errorf("%d solve spans carry retries, want 2 (spans: %+v)", retried, snap.Recent[0].Spans)
	}
	if m := scrape(t, ts.URL); m[`fepiad_retries_total`] != 2 {
		t.Errorf("fepiad_retries_total = %v, want 2", m[`fepiad_retries_total`])
	}
}

// TestFaultGaugesFromSeededInjector checks a stats-keeping injector feeds
// the fepiad_faults_injected series.
func TestFaultGaugesFromSeededInjector(t *testing.T) {
	inj := faults.NewSeeded(1, faults.Config{
		Rates:     map[faults.Point]map[faults.Kind]float64{faults.Solve: {faults.KindError: 1}},
		MaxFaults: 1,
	})
	s := New(quietConfig(Config{Injector: inj}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", linearSpec(9))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after retry (%s)", resp.StatusCode, body)
	}
	m := scrape(t, ts.URL)
	if got := m[`fepiad_faults_injected{kind="error",point="solve"}`]; got != 1 {
		t.Errorf(`fepiad_faults_injected{kind="error",point="solve"} = %v, want 1`, got)
	}
}
