package server

// Tests of the cluster-wide observability layer: cross-node trace
// stitching (one ingress trace containing the owner's spans), the
// X-Fepiad-Trace edge cases (malformed headers, single-hop no-restitch),
// the federated /v1/cluster/status and /metrics?federate=1 fan-outs and
// their per-peer degradation, and slow-request capture. The Cluster*
// tests also run under -race in the chaos suite.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/obs"
)

// postWithHeaders posts a body with extra request headers.
func postWithHeaders(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// findTrace digs one trace out of a ring snapshot by request ID.
func findTrace(t *testing.T, snap obs.RingSnapshot, id string) obs.TraceData {
	t.Helper()
	for _, td := range snap.Recent {
		if td.ID == id {
			return td
		}
	}
	t.Fatalf("trace %q not in the recent ring (%d entries)", id, len(snap.Recent))
	return obs.TraceData{}
}

// spanByName returns the first span with the given name, failing when
// absent.
func spanByName(t *testing.T, td obs.TraceData, name string) obs.SpanData {
	t.Helper()
	for _, sp := range td.Spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("trace %q has no %q span: %+v", td.ID, name, td.Spans)
	return obs.SpanData{}
}

// TestClusterDistributedTraceStitch is the tentpole acceptance: a
// forwarded /v1/analyze on a 3-node ring produces ONE trace on the
// ingress containing the remote node's spans — the owner's server span
// parented under the ingress forward span, the owner's pipeline spans
// under the server span — with the trace ID propagated end to end.
func TestClusterDistributedTraceStitch(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	doc := ownedDoc(t, nodes, "n1")

	resp, body := postWithHeaders(t, nodes[0].url+"/v1/analyze", doc,
		map[string]string{"X-Request-Id": "stitch-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(cluster.ForwardedHeader) != "true" {
		t.Fatal("request was not forwarded; cannot exercise stitching")
	}
	traceID := resp.Header.Get(cluster.TraceIDHeader)
	if len(traceID) != 16 {
		t.Fatalf("X-Fepiad-Trace-Id = %q, want 16 hex chars", traceID)
	}
	// The span export must never leak to the client: it is peer wire,
	// not API surface.
	if resp.Header.Get(cluster.SpansHeader) != "" {
		t.Error("X-Fepiad-Spans leaked onto the client response")
	}

	// The ingress trace: one document holding both sides.
	td := findTrace(t, traces(t, nodes[0].url), "stitch-1")
	if td.TraceID != traceID {
		t.Fatalf("ingress trace_id %q != response header %q", td.TraceID, traceID)
	}
	if td.ParentID != "" {
		t.Errorf("ingress trace has parent_id %q, want none (it IS the root)", td.ParentID)
	}
	fw := spanByName(t, td, "forward")
	if fw.Attrs["peer"] != "n1" || fw.Attrs["attempts"] != "1" || fw.Attrs["breaker"] == "" {
		t.Errorf("forward span not annotated: %+v", fw.Attrs)
	}
	srv := spanByName(t, td, "server")
	if srv.Attrs["node"] != "n1" {
		t.Errorf("server span node = %q, want n1", srv.Attrs["node"])
	}
	if srv.ParentID != fw.SpanID {
		t.Errorf("server span parent %q, want the forward span %q", srv.ParentID, fw.SpanID)
	}
	if srv.StartUS < fw.StartUS {
		t.Errorf("server span starts at %dus, before the forward span at %dus", srv.StartUS, fw.StartUS)
	}
	// The owner's pipeline spans hang under its server span.
	remote := 0
	for _, sp := range td.Spans {
		if sp.ParentID == srv.SpanID {
			remote++
		}
	}
	if remote == 0 {
		t.Errorf("no remote pipeline spans under the server span: %+v", td.Spans)
	}
	for _, name := range []string{"parse", "admit"} {
		if sp := spanByName(t, td, name); sp.ParentID != srv.SpanID && sp.ParentID != td.SpanID {
			t.Errorf("%s span parent %q is neither local root %q nor remote server %q",
				name, sp.ParentID, td.SpanID, srv.SpanID)
		}
	}

	// The owner recorded the same trace ID, rooted under the forward span.
	otd := findTrace(t, traces(t, nodes[1].url), "stitch-1")
	if otd.TraceID != traceID {
		t.Errorf("owner trace_id %q != %q", otd.TraceID, traceID)
	}
	if otd.ParentID != fw.SpanID {
		t.Errorf("owner trace parent %q, want the ingress forward span %q", otd.ParentID, fw.SpanID)
	}
}

// TestClusterBatchTraceStitch: sub-batch forwards stitch too — the
// ingress batch trace carries a server span per remote peer involved.
func TestClusterBatchTraceStitch(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	// Two documents owned by two different remote peers plus the whole
	// batch posted at n0 exercises concurrent sub-batch forwards.
	batch := `{"systems": [` + ownedDoc(t, nodes, "n1") + `,` + ownedDoc(t, nodes, "n2") + `]}`
	resp, body := postWithHeaders(t, nodes[0].url+"/v1/batch", batch,
		map[string]string{"X-Request-Id": "stitch-batch-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	td := findTrace(t, traces(t, nodes[0].url), "stitch-batch-1")
	seen := map[string]bool{}
	for _, sp := range td.Spans {
		if sp.Name == "server" {
			seen[sp.Attrs["node"]] = true
		}
	}
	if !seen["n1"] || !seen["n2"] {
		t.Errorf("batch trace server spans cover %v, want n1 and n2", seen)
	}
}

// TestTraceHeaderMalformedIgnored: every malformed X-Fepiad-Trace value
// starts a fresh trace — never an error, never adoption of garbage.
func TestTraceHeaderMalformedIgnored(t *testing.T) {
	s := New(quietConfig(Config{}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for i, bad := range []string{
		"",
		"not-a-trace",
		"0123456789abcdef",                   // no parent half
		"0123456789abcdef-",                  // empty parent
		"0123456789abcdef_0123456789abcdef",  // wrong separator
		"0123456789ABCDEF-0123456789abcdef",  // uppercase
		"0123456789abcdef-0123456789abcdeg",  // non-hex
		"0123456789abcdef-0123456789abcdef0", // too long
	} {
		rid := "malformed-" + string(rune('a'+i))
		resp, body := postWithHeaders(t, ts.URL+"/v1/analyze", linearSpec(i),
			map[string]string{"X-Request-Id": rid, cluster.TraceHeader: bad})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("header %q: status %d (%s)", bad, resp.StatusCode, body)
		}
		got := resp.Header.Get(cluster.TraceIDHeader)
		if !hex16.MatchString(got) {
			t.Fatalf("header %q: trace id %q is not 16 hex chars", bad, got)
		}
		if strings.HasPrefix(bad, got) {
			t.Fatalf("header %q: malformed trace id adopted as %q", bad, got)
		}
		td := findTrace(t, traces(t, ts.URL), rid)
		if td.TraceID != got || td.ParentID != "" {
			t.Fatalf("header %q: trace document adopted garbage: %+v", bad, td)
		}
	}

	// And a well-formed header IS adopted.
	resp, _ := postWithHeaders(t, ts.URL+"/v1/analyze", linearSpec(0),
		map[string]string{cluster.TraceHeader: "0123456789abcdef-fedcba9876543210"})
	if got := resp.Header.Get(cluster.TraceIDHeader); got != "0123456789abcdef" {
		t.Fatalf("well-formed trace header not adopted: trace id %q", got)
	}
}

// TestClusterSingleHopNoDoubleStitch: a forwarded-in request is served
// where it lands (never re-forwarded), exports its span subtree exactly
// once on X-Fepiad-Spans, and records no forward span — so a routing
// loop cannot stitch the same subtree twice.
func TestClusterSingleHopNoDoubleStitch(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	doc := ownedDoc(t, nodes, "n1") // n2 does NOT own this
	resp, body := postWithHeaders(t, nodes[2].url+"/v1/analyze", doc, map[string]string{
		"X-Request-Id":              "hop-1",
		cluster.ForwardedFromHeader: "n0",
		cluster.TraceHeader:         "00112233445566aa-ffeeddccbbaa0099",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(cluster.NodeHeader); got != "n2" {
		t.Fatalf("answered by %q, want n2 (single-hop rule)", got)
	}
	raw := resp.Header.Get(cluster.SpansHeader)
	if raw == "" {
		t.Fatal("forwarded-in request exported no span subtree")
	}
	var ex spanExport
	if err := json.Unmarshal([]byte(raw), &ex); err != nil {
		t.Fatalf("X-Fepiad-Spans is not valid JSON: %v", err)
	}
	if ex.Node != "n2" || len(ex.Spans) == 0 || ex.Spans[0].Name != "server" {
		t.Fatalf("bad span export: %+v", ex)
	}
	if ex.Spans[0].ParentID != "ffeeddccbbaa0099" {
		t.Errorf("exported server span parent %q, want the header's parent span", ex.Spans[0].ParentID)
	}
	td := findTrace(t, traces(t, nodes[2].url), "hop-1")
	if td.TraceID != "00112233445566aa" {
		t.Errorf("trace id %q, want the propagated 00112233445566aa", td.TraceID)
	}
	for _, sp := range td.Spans {
		if sp.Name == "forward" || sp.Name == "server" {
			t.Errorf("forwarded-in request recorded a %q span (re-forward or self-stitch)", sp.Name)
		}
	}
}

// TestClusterStatusFederates: /v1/cluster/status merges every ring
// member; killing a node degrades its entry — never the document.
func TestClusterStatusFederates(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	// One served request so the self entry carries non-zero counters.
	if resp, body := postJSON(t, nodes[0].url+"/v1/analyze", ownedDoc(t, nodes, "n0")); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d (%s)", resp.StatusCode, body)
	}

	get := func(url string) ClusterStatus {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster status answered %d, must always be 200", resp.StatusCode)
		}
		var doc ClusterStatus
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	doc := get(nodes[0].url + "/v1/cluster/status")
	if doc.Self != "n0" || doc.NodesTotal != 3 || doc.NodesHealthy != 3 {
		t.Fatalf("healthy cluster: %+v", doc)
	}
	if !doc.Nodes[0].Self || doc.Nodes[0].Node != "n0" || doc.Nodes[0].Requests != 1 {
		t.Errorf("self entry wrong: %+v", doc.Nodes[0])
	}
	share := 0.0
	for _, nd := range doc.Nodes {
		if !nd.Healthy || nd.Error != "" {
			t.Errorf("node %s unhealthy in a healthy cluster: %+v", nd.Node, nd)
		}
		share += nd.RingShare
	}
	if share < 0.99 || share > 1.01 {
		t.Errorf("ring shares sum to %v, want 1", share)
	}

	// ?local=1 answers without fan-out: exactly one entry.
	if local := get(nodes[1].url + "/v1/cluster/status?local=1"); local.NodesTotal != 1 || local.Nodes[0].Node != "n1" {
		t.Errorf("local=1 fanned out: %+v", local)
	}

	// Kill n2: its entry degrades, the document stays 200 and complete.
	nodes[2].ts.Close()
	doc = get(nodes[0].url + "/v1/cluster/status")
	if doc.NodesTotal != 3 || doc.NodesHealthy != 2 {
		t.Fatalf("after kill: %+v", doc)
	}
	for _, nd := range doc.Nodes {
		if nd.Node == "n2" {
			if nd.Healthy || nd.Error == "" {
				t.Errorf("dead node entry not degraded: %+v", nd)
			}
		} else if !nd.Healthy {
			t.Errorf("live node %s marked unhealthy: %+v", nd.Node, nd)
		}
	}
}

// TestClusterFederatedMetricsMerge: /metrics?federate=1 renders fleet
// totals — peer counters summed into the local ones — and marks each
// peer's reachability on fepiad_federation_peer_up.
func TestClusterFederatedMetricsMerge(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	for i := range nodes {
		doc := ownedDoc(t, nodes, nodes[i].id)
		if resp, body := postJSON(t, nodes[i].url+"/v1/analyze", doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze on %s: status %d (%s)", nodes[i].id, resp.StatusCode, body)
		}
	}
	fetch := func() string {
		t.Helper()
		resp, err := http.Get(nodes[0].url + "/metrics?federate=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	doc := fetch()
	for _, line := range []string{
		// Each node served one analyze; the fleet document sums them.
		"fepiad_requests_total{endpoint=\"analyze\"} 2",
		"fepiad_federation_peer_up{peer=\"n1\"} 1",
	} {
		if !strings.Contains(doc, line) {
			t.Errorf("federated document missing %q", line)
		}
	}

	nodes[1].ts.Close()
	doc = fetch()
	if !strings.Contains(doc, "fepiad_federation_peer_up{peer=\"n1\"} 0") {
		t.Errorf("dead peer not marked down in:\n%s", doc)
	}
	if !strings.Contains(doc, "fepiad_requests_total{endpoint=\"analyze\"} 1") {
		t.Errorf("dead peer's counters still merged in:\n%s", doc)
	}
}

// TestSlowRequestCaptureAndShedExclusion: requests past the slow
// threshold are counted and force-kept through ring sampling, while
// shed 503s — slow-marked or not — stay out of the slowest-ever list.
func TestSlowRequestCaptureAndShedExclusion(t *testing.T) {
	s := New(quietConfig(Config{
		TraceSlowThreshold: time.Nanosecond, // everything is "slow"
		TraceSample:        1000,            // sampling would drop nearly all traces...
		MaxInFlight:        1,
	}))
	entered := make(chan struct{})
	release := make(chan struct{})
	s.beforeAnalyze = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(linearSpec(1)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		first <- err
	}()
	<-entered

	// Shed while the slot is held.
	resp, _ := postWithHeaders(t, ts.URL+"/v1/analyze", linearSpec(2),
		map[string]string{"X-Request-Id": "shed-slow-1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}

	snap := traces(t, ts.URL)
	// ...but slow-marking bypasses sampling: both traces are retained.
	if len(snap.Recent) != 2 {
		t.Fatalf("%d recent traces, want 2 (slow capture beats 1-in-1000 sampling)", len(snap.Recent))
	}
	td := findTrace(t, snap, "shed-slow-1")
	if !td.Slow {
		t.Error("shed trace not slow-marked despite the 1ns threshold")
	}
	for _, sl := range snap.Slowest {
		if sl.ID == "shed-slow-1" {
			t.Error("shed 503 occupies a slowest-ever slot")
		}
	}
	if got := s.metrics.slowReqs[epAnalyze].Value(); got != 2 {
		t.Errorf("fepiad_slow_requests_total = %d, want 2", got)
	}
}

// TestSLOGaugesAndExemplarOnServer: a served request surfaces the SLO
// burn-rate gauges on /metrics and links at least one latency bucket to
// a findable trace ID via an exemplar.
func TestSLOGaugesAndExemplarOnServer(t *testing.T) {
	s := New(quietConfig(Config{SLOLatencyP99MS: 250, SLOAvailability: 0.995}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, body := postJSON(t, ts.URL+"/v1/analyze", linearSpec(3)); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d (%s)", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	for _, line := range []string{
		`fepiad_slo_burn_rate{endpoint="analyze",slo="availability",window="5m"} 0`,
		`fepiad_slo_burn_rate{endpoint="analyze",slo="latency",window="1h"} 0`,
		`fepiad_slo_error_budget_remaining{endpoint="analyze",slo="availability"} 1`,
		`fepiad_slo_objective{endpoint="analyze",slo="latency"} 250`,
		`fepiad_slo_objective{endpoint="batch",slo="availability"} 0.995`,
	} {
		if !strings.Contains(doc, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}

	// The exemplar's trace ID resolves to a real trace in the ring.
	m := regexp.MustCompile(`fepiad_request_duration_ms_bucket\{endpoint="analyze",[^}]*\} \d+ # \{trace_id="([0-9a-f]{16})"\}`).FindStringSubmatch(doc)
	if m == nil {
		t.Fatalf("no exemplar on the analyze latency histogram:\n%s", doc)
	}
	found := false
	for _, td := range traces(t, ts.URL).Recent {
		if td.TraceID == m[1] {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("exemplar trace id %s not found in /debug/traces", m[1])
	}
}
