// Command bench is the reproducible benchmark harness behind
// `make bench`. It times the radius cache on a fixed-seed workload in
// three scenarios — cold (every key a first-touch miss), warm
// (single-threaded re-reads of a resident working set, with allocation
// counts), and contended (1..NumCPU workers hammering one shared cache) —
// plus the vectorized SoA kernel series and the incremental delta-session
// series, and writes everything to a JSON report (BENCH_10.json in CI;
// scripts/bench.sh merges in the loadgen-driven multi-node cluster series
// alongside).
//
// To make the speedup claims auditable from the report alone, the
// harness embeds a frozen copy of the pre-sharding cache — one global
// mutex, a string key built on every lookup, a defensive boundary clone
// on every hit — and runs it on the identical workload. The baseline
// keeps the same no-op trace/fault context calls as the live path, so
// the comparison isolates exactly what changed: shard routing,
// singleflight, and the allocation-free hit path.
//
// The kernel series compare internal/kernel against the per-feature
// analytic loop it replaces, on the identical workload: kernel_warm
// (pack reused across sweeps — the steady-state shape), kernel_cold
// (Pack plus one sweep from nothing), and mixed (linear + convex
// features through batch.AnalyzeOneContext with the kernel on and off).
// Byte-identity between the two paths is verified inside the harness and
// recorded in the summary, so the speedup figures are only ever claimed
// for bit-equal results.
//
// The incremental series walk a deterministic trajectory over the
// block-sparse HCS workload (one indicator feature per machine) and time
// each step two ways: a full Compute sweep of the pack, and a
// kernel.Delta session's ComputeDelta restricted to the dirty
// coordinates — single-coordinate moves (incremental_1) and 8-coordinate
// moves across distinct machine blocks (incremental_k). As with the
// kernel series, bit-identity along a randomized walk is verified first
// and recorded, so the speedups are only claimed for bit-equal results.
//
//	bench -out BENCH_10.json -seed 2003 -keys 512 -dim 8
//
// The workload is deterministic for a given flag set; timings move with
// the machine, allocation counts do not.
package main

import (
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sync"
	"time"

	"fepia/internal/batch"
	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/kernel"
	"fepia/internal/obs"
	"fepia/internal/vecmath"
)

func main() {
	var (
		out     = flag.String("out", "BENCH_10.json", "report path")
		seed    = flag.Int64("seed", 2003, "workload seed")
		keys    = flag.Int("keys", 512, "distinct radius subproblems in the working set")
		dim     = flag.Int("dim", 8, "perturbation dimensionality")
		iters   = flag.Int("iters", 20000, "lookups per timed measurement (per worker when contended)")
		reps    = flag.Int("reps", 5, "repetitions per scenario; the report keeps the fastest")
		workers = flag.Int("workers", 0, "max contended worker count (0 = NumCPU)")
		shards  = flag.Int("shards", 0, "shard count of the live cache (0 = default)")
		sweeps  = flag.Int("sweeps", 100, "full working-set sweeps per warm-kernel measurement")
	)
	flag.Parse()

	maxWorkers := *workers
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}

	features, p := workload(*seed, *keys, *dim)
	opts := core.Options{}

	rep := report{
		Meta: meta{
			Seed: *seed, Keys: *keys, Dim: *dim, Iters: *iters, Reps: *reps,
			MaxWorkers: maxWorkers, Shards: *shards, Sweeps: *sweeps,
			NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
		},
	}

	// Cold: every lookup is a first-touch miss on a fresh cache. Timed
	// per distinct key; dominated by the solver, recorded so regressions
	// in miss-path overhead are visible next to the hit-path numbers.
	rep.add(measure("cold", "baseline", 1, *reps, *keys, func() func() {
		c := newBaselineCache(4 * *keys)
		return func() {
			for _, f := range features {
				mustRadius(c.radius(f, p, opts))
			}
		}
	}))
	rep.add(measure("cold", "sharded", 1, *reps, *keys, func() func() {
		c := batch.NewCacheSharded(4**keys, *shards)
		return func() {
			for _, f := range features {
				mustRadius(c.Radius(f, p, opts))
			}
		}
	}))

	// Warm: single-threaded re-reads of a fully resident working set.
	// This is where allocs/op is meaningful (one goroutine, quiesced
	// runtime), pinning the "no allocations on the hit path" claim.
	base := newBaselineCache(4 * *keys)
	for _, f := range features {
		mustRadius(base.radius(f, p, opts))
	}
	live := batch.NewCacheSharded(4**keys, *shards)
	for _, f := range features {
		mustRadius(live.Radius(f, p, opts))
	}
	ctx := context.Background()

	rep.add(measureAllocs("warm_hit", "baseline", *reps, *iters, func(n int) {
		for i := 0; i < n; i++ {
			mustRadius(base.radius(features[i%len(features)], p, opts))
		}
	}))
	rep.add(measureAllocs("warm_hit", "sharded", *reps, *iters, func(n int) {
		for i := 0; i < n; i++ {
			mustRadius(live.Radius(features[i%len(features)], p, opts))
		}
	}))
	rep.add(measureAllocs("warm_hit_shared", "sharded", *reps, *iters, func(n int) {
		for i := 0; i < n; i++ {
			mustRadius(live.RadiusContextShared(ctx, features[i%len(features)], p, opts))
		}
	}))

	// Contended: W workers over one shared, fully warm cache — the
	// fepiad serving shape. The baseline serialises on its global mutex
	// and allocates per hit; the live cache shards the locks and returns
	// shared boundaries, which is what the server's ShareBoundaries
	// option selects. The competing implementations run interleaved,
	// rep by rep, so slow phases of a shared machine bias every series
	// equally instead of whichever ran during the bad seconds.
	oneShard := batch.NewCacheSharded(4**keys, 1)
	for _, f := range features {
		mustRadius(oneShard.Radius(f, p, opts))
	}
	for w := 1; w <= maxWorkers; w++ {
		w := w
		rep.add(measureInterleaved("contended", w, *reps, w**iters, []contender{
			{"baseline", func() {
				hammer(w, *iters, features, func(f core.Feature) { mustRadius(base.radius(f, p, opts)) })
			}},
			{"sharded-1", func() {
				hammer(w, *iters, features, func(f core.Feature) { mustRadius(oneShard.RadiusContextShared(ctx, f, p, opts)) })
			}},
			{"sharded", func() {
				hammer(w, *iters, features, func(f core.Feature) { mustRadius(live.RadiusContextShared(ctx, f, p, opts)) })
			}},
		})...)
	}

	// Kernel: the vectorized SoA analytic kernel against the per-feature
	// analytic loop it replaces, on the identical all-linear workload.
	// Byte-identity is asserted before anything is timed: a speedup over
	// results that differ would be meaningless.
	copts := opts.WithDefaults()
	kb, err := kernel.Pack(features, *dim, copts.Norm)
	if err != nil {
		fatal(err)
	}
	scalarOut := make([]core.RadiusResult, len(features))
	kernelOut := make([]core.RadiusResult, len(features))
	for k, f := range features {
		scalarOut[k] = mustRadiusResult(core.ComputeRadius(f, p, opts))
	}
	fb, err := kb.Compute(p.Orig, kernelOut)
	if err != nil {
		fatal(err)
	}
	rep.Summary.KernelIdentical = len(fb) == 0 && resultsIdentical(scalarOut, kernelOut)

	// Warm: the steady-state sweep shape — one pack reused across
	// operating-point sweeps, head-to-head with the scalar loop.
	kOps := *sweeps * len(features)
	rep.add(measureInterleaved("kernel_warm", 1, *reps, kOps, []contender{
		{"perfeature", func() {
			for s := 0; s < *sweeps; s++ {
				for i, f := range features {
					scalarOut[i] = mustRadiusResult(core.ComputeRadius(f, p, opts))
				}
			}
		}},
		{"kernel", func() {
			for s := 0; s < *sweeps; s++ {
				if _, err := kb.Compute(p.Orig, kernelOut); err != nil {
					fatal(err)
				}
			}
		}},
	})...)

	// Cold: Pack from nothing plus a single sweep — what one engine
	// request pays — against one scalar pass over the same features.
	rep.add(measureInterleaved("kernel_cold", 1, *reps, len(features), []contender{
		{"perfeature", func() {
			for i, f := range features {
				scalarOut[i] = mustRadiusResult(core.ComputeRadius(f, p, opts))
			}
		}},
		{"kernel", func() {
			b, err := kernel.Pack(features, *dim, copts.Norm)
			if err != nil {
				fatal(err)
			}
			if _, err := b.Compute(p.Orig, kernelOut); err != nil {
				fatal(err)
			}
		}},
	})...)

	// Mixed: one in four features is a convex quadratic the kernel must
	// route to internal/optimize, driven through the real engine entry
	// point with the kernel on and off. The identity check covers the
	// whole analysis, proving routing loses nothing.
	mixedFeatures := mixedWorkload(features, *dim)
	mixedJob := batch.Job{Features: mixedFeatures, Perturbation: p}
	aOff, err := batch.AnalyzeOneContext(context.Background(), mixedJob, batch.Options{Core: opts})
	if err != nil {
		fatal(err)
	}
	aOn, err := batch.AnalyzeOneContext(context.Background(), mixedJob, batch.Options{Core: opts, Kernel: true})
	if err != nil {
		fatal(err)
	}
	rep.Summary.KernelMixedIdentical = math.Float64bits(aOn.Robustness) == math.Float64bits(aOff.Robustness) &&
		resultsIdentical(aOn.Radii, aOff.Radii)
	rep.add(measureInterleaved("mixed", 1, *reps, len(mixedFeatures), []contender{
		{"perfeature", func() {
			if _, err := batch.AnalyzeOneContext(context.Background(), mixedJob, batch.Options{Core: opts}); err != nil {
				fatal(err)
			}
		}},
		{"kernel", func() {
			if _, err := batch.AnalyzeOneContext(context.Background(), mixedJob, batch.Options{Core: opts, Kernel: true}); err != nil {
				fatal(err)
			}
		}},
	})...)

	// Incremental: a kernel.Delta session against full Compute sweeps on
	// the block-sparse HCS shape the delta path is designed for — one
	// indicator feature per machine over its own coordinate block. Each op
	// is one trajectory step; the full contender re-solves the whole pack
	// at every step, the delta contender updates only the radii the moved
	// coordinates can touch. Identity is asserted over a randomized walk
	// before anything is timed.
	incMachines := 32
	incFeatures, incP := incrementalWorkload(*seed, incMachines, *dim)
	incDim := len(incP.Orig)
	incB, err := kernel.Pack(incFeatures, incDim, copts.Norm)
	if err != nil {
		fatal(err)
	}
	rep.Summary.IncrementalIdentical = incrementalIdentity(*seed, incB, incP.Orig)

	incSteps := 2000
	kMoves := 8
	rep.add(measureInterleaved("incremental_1", 1, *reps, incSteps, incrementalContenders(incB, incP.Orig, incSteps, 1))...)
	rep.add(measureInterleaved("incremental_k", 1, *reps, incSteps, incrementalContenders(incB, incP.Orig, incSteps, kMoves))...)

	rep.summarise(maxWorkers)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: contended x%d speedup %.2fx, warm shared allocs/op %.2f, kernel warm %.2fx cold %.2fx identical %v mixed-identical %v, incremental 1-coord %.2fx %d-coord %.2fx identical %v\n",
		*out, rep.Summary.ContendedWorkers, rep.Summary.ContendedSpeedup, rep.Summary.WarmSharedAllocs,
		rep.Summary.KernelSpeedup, rep.Summary.KernelColdSpeedup, rep.Summary.KernelIdentical, rep.Summary.KernelMixedIdentical,
		rep.Summary.IncrementalSpeedup1, kMoves, rep.Summary.IncrementalSpeedupK, rep.Summary.IncrementalIdentical)
}

// mixedWorkload replaces every fourth feature of the linear working set
// with a convex quadratic FuncImpact of the same dimension, keeping the
// rest untouched — the shape of a real request where the kernel takes
// the linear majority and internal/optimize keeps the remainder.
func mixedWorkload(features []core.Feature, dim int) []core.Feature {
	mixed := make([]core.Feature, len(features))
	copy(mixed, features)
	for k := 3; k < len(mixed); k += 4 {
		mixed[k] = core.Feature{
			Name: mixed[k].Name,
			Impact: &core.FuncImpact{
				N: dim,
				F: func(pi []float64) float64 {
					s := 0.0
					for _, v := range pi {
						s += v * v
					}
					return s
				},
				Convex: true,
			},
			// orig entries sit in [0.5, 1.5], so ‖π^orig‖² ≤ 2.25·dim: a
			// bound at 4·dim is feasible and reachable for every feature.
			Bounds: core.NoMin(4 * float64(dim)),
		}
	}
	return mixed
}

// resultsIdentical compares two result slices by IEEE-754 bit pattern —
// the same predicate the kernel's property tests use.
func resultsIdentical(a, b []core.RadiusResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Feature != y.Feature || x.Kind != y.Kind || x.Method != y.Method {
			return false
		}
		if math.Float64bits(x.Radius) != math.Float64bits(y.Radius) {
			return false
		}
		if (x.Boundary == nil) != (y.Boundary == nil) || len(x.Boundary) != len(y.Boundary) {
			return false
		}
		for j := range x.Boundary {
			if math.Float64bits(x.Boundary[j]) != math.Float64bits(y.Boundary[j]) {
				return false
			}
		}
	}
	return true
}

func mustRadiusResult(r core.RadiusResult, err error) core.RadiusResult {
	if err != nil {
		fatal(err)
	}
	return r
}

// workload builds the fixed-seed working set: keys distinct affine
// impacts of the given dimensionality, all feasible at one shared
// operating point so every radius is finite and positive.
func workload(seed int64, keys, dim int) ([]core.Feature, core.Perturbation) {
	rng := rand.New(rand.NewSource(seed))
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = 0.5 + rng.Float64()
	}
	p := core.Perturbation{Name: "π", Orig: orig}
	features := make([]core.Feature, keys)
	for k := range features {
		coeffs := make([]float64, dim)
		at := 0.0
		for i := range coeffs {
			coeffs[i] = 0.5 + rng.Float64()
			at += coeffs[i] * orig[i]
		}
		imp, err := core.NewLinearImpact(coeffs, 0)
		if err != nil {
			fatal(err)
		}
		features[k] = core.Feature{
			Name:   fmt.Sprintf("F%d", k),
			Impact: imp,
			Bounds: core.NoMin(at * (1.5 + rng.Float64())),
		}
	}
	return features, p
}

// incrementalWorkload builds the block-sparse HCS shape the delta path
// exists for: one finishing-time feature per machine, each an indicator
// row over its own cpm-coordinate block of the ETC vector (the
// applications mapped to that machine), all feasible at one shared
// operating point. Moving a coordinate dirties exactly one machine's
// feature, so ComputeDelta re-sweeps one row where Compute re-sweeps
// them all.
func incrementalWorkload(seed int64, machines, cpm int) ([]core.Feature, core.Perturbation) {
	rng := rand.New(rand.NewSource(seed + 7))
	dim := machines * cpm
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = 0.5 + rng.Float64()
	}
	p := core.Perturbation{Name: "C", Orig: orig}
	features := make([]core.Feature, machines)
	for m := range features {
		coeffs := make([]float64, dim)
		at := 0.0
		for c := 0; c < cpm; c++ {
			coeffs[m*cpm+c] = 1
			at += orig[m*cpm+c]
		}
		imp, err := core.NewLinearImpact(coeffs, 0)
		if err != nil {
			fatal(err)
		}
		features[m] = core.Feature{
			Name:   fmt.Sprintf("finish(m%d)", m),
			Impact: imp,
			Bounds: core.NoMin(at * (1.5 + rng.Float64())),
		}
	}
	return features, p
}

// incrementalIdentity walks a randomized trajectory of 1..3-coordinate
// moves through one delta session, checking every step bit for bit
// against a cold Compute sweep of the same pack at the same point — the
// predicate the speedup figures are conditioned on.
func incrementalIdentity(seed int64, b *kernel.Batch, orig []float64) bool {
	rng := rand.New(rand.NewSource(seed + 11))
	n := b.Len()
	dim := len(orig)
	deltaOut := make([]core.RadiusResult, n)
	coldOut := make([]core.RadiusResult, n)
	prev := append([]float64(nil), orig...)
	next := append([]float64(nil), orig...)
	d := b.Delta()
	if _, err := d.Full(prev, deltaOut); err != nil {
		fatal(err)
	}
	for step := 0; step < 64; step++ {
		copy(next, prev)
		dirty := make([]int, 1+rng.Intn(3))
		for i := range dirty {
			j := rng.Intn(dim)
			dirty[i] = j
			next[j] *= 0.9 + 0.2*rng.Float64()
		}
		if _, _, err := d.ComputeDelta(prev, next, dirty, deltaOut); err != nil {
			fatal(err)
		}
		if _, err := b.Compute(next, coldOut); err != nil {
			fatal(err)
		}
		if !resultsIdentical(deltaOut, coldOut) {
			return false
		}
		prev, next = next, prev
	}
	return true
}

// incrementalContenders builds the full-recompute and delta-session
// competitors for one interleaved incremental series. Each op is one
// trajectory step that bumps k coordinates spread across distinct
// machine blocks; both contenders walk the identical deterministic
// trajectory from the same start. The delta contender keeps one session
// across steps — the Watcher shape — and resyncs itself from orig at
// the top of each rep.
func incrementalContenders(b *kernel.Batch, orig []float64, steps, k int) []contender {
	n := b.Len()
	dim := len(orig)
	move := func(point []float64, step int, dirty []int) {
		for t := 0; t < k; t++ {
			j := ((step*k+t)*(dim/k) + step) % dim
			point[j] += 0.001
			if dirty != nil {
				dirty[t] = j
			}
		}
	}
	fullOut := make([]core.RadiusResult, n)
	fullPoint := make([]float64, dim)
	deltaOut := make([]core.RadiusResult, n)
	deltaPrev := make([]float64, dim)
	deltaNext := make([]float64, dim)
	dirty := make([]int, k)
	d := b.Delta()
	return []contender{
		{"full", func() {
			copy(fullPoint, orig)
			for s := 0; s < steps; s++ {
				move(fullPoint, s, nil)
				if _, err := b.Compute(fullPoint, fullOut); err != nil {
					fatal(err)
				}
			}
		}},
		{"delta", func() {
			copy(deltaPrev, orig)
			if _, err := d.Full(deltaPrev, deltaOut); err != nil {
				fatal(err)
			}
			for s := 0; s < steps; s++ {
				copy(deltaNext, deltaPrev)
				move(deltaNext, s, dirty)
				if _, _, err := d.ComputeDelta(deltaPrev, deltaNext, dirty, deltaOut); err != nil {
					fatal(err)
				}
				deltaPrev, deltaNext = deltaNext, deltaPrev
			}
		}},
	}
}

// contender is one named competitor in an interleaved measurement.
type contender struct {
	impl string
	body func()
}

// hammer runs w goroutines, each performing iters lookups over the
// working set with a coprime per-worker stride so neighbours touch
// different keys at any instant.
func hammer(w, iters int, features []core.Feature, visit func(core.Feature)) {
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			stride := 2*g + 1
			for i := 0; i < iters; i++ {
				visit(features[(g+i*stride)%len(features)])
			}
		}()
	}
	wg.Wait()
}

// series is one measured line of the report.
type series struct {
	Scenario    string  `json:"scenario"`
	Impl        string  `json:"impl"`
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

type meta struct {
	Seed       int64  `json:"seed"`
	Keys       int    `json:"keys"`
	Dim        int    `json:"dim"`
	Iters      int    `json:"iters"`
	Reps       int    `json:"reps"`
	MaxWorkers int    `json:"max_workers"`
	Shards     int    `json:"shards"`
	Sweeps     int    `json:"sweeps"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

type summary struct {
	// ContendedSpeedup is baseline ns/op divided by live-cache ns/op at
	// the widest contended worker count — the headline ≥2x acceptance
	// figure, derived from series recorded in this same file.
	ContendedSpeedup float64 `json:"contended_speedup"`
	ContendedWorkers int     `json:"contended_workers"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op"`
	ShardedNsPerOp   float64 `json:"sharded_ns_per_op"`
	// Warm single-threaded allocation counts: the baseline pays for a
	// key string and a boundary clone per hit, the shared path pays
	// nothing.
	WarmBaselineAllocs float64 `json:"warm_hit_allocs_baseline"`
	WarmClonedAllocs   float64 `json:"warm_hit_allocs_sharded"`
	WarmSharedAllocs   float64 `json:"warm_hit_allocs_sharded_shared"`
	// KernelSpeedup is per-feature ns/op divided by SoA-kernel ns/op on
	// the warm sweep — the ≥4x acceptance figure of the kernel series.
	// KernelColdSpeedup is the same ratio when the kernel also pays for
	// Pack. Both ratios are only claimed when KernelIdentical held.
	KernelSpeedup      float64 `json:"kernel_speedup"`
	KernelColdSpeedup  float64 `json:"kernel_cold_speedup"`
	KernelPerFeatureNs float64 `json:"kernel_perfeature_ns_per_op"`
	KernelNsPerOp      float64 `json:"kernel_ns_per_op"`
	// KernelIdentical records that the kernel reproduced the scalar
	// path's RadiusResults bit for bit on the all-linear workload;
	// KernelMixedIdentical the same through batch.AnalyzeOneContext on
	// the mixed linear/convex workload (routing included).
	KernelIdentical      bool `json:"kernel_identical"`
	KernelMixedIdentical bool `json:"kernel_mixed_identical"`
	// Incremental speedups are full-recompute ns/step divided by
	// ComputeDelta ns/step on the block-sparse HCS workload:
	// IncrementalSpeedup1 for single-coordinate moves (the ≥3x acceptance
	// figure of the incremental series), IncrementalSpeedupK for moves
	// touching several machine blocks at once. Both ratios are only
	// claimed when IncrementalIdentical held: the delta session
	// reproduced cold Compute sweeps bit for bit along a randomized walk.
	IncrementalSpeedup1  float64 `json:"incremental_speedup_1"`
	IncrementalSpeedupK  float64 `json:"incremental_speedup_k"`
	IncrementalFullNs    float64 `json:"incremental_full_ns_per_op"`
	IncrementalDeltaNs   float64 `json:"incremental_delta_ns_per_op"`
	IncrementalIdentical bool    `json:"incremental_identical"`
}

type report struct {
	Meta    meta     `json:"meta"`
	Series  []series `json:"series"`
	Summary summary  `json:"summary"`
}

func (r *report) add(s ...series) { r.Series = append(r.Series, s...) }

func (r *report) find(scenario, impl string, workers int) *series {
	for i := range r.Series {
		s := &r.Series[i]
		if s.Scenario == scenario && s.Impl == impl && s.Workers == workers {
			return s
		}
	}
	return nil
}

func (r *report) summarise(maxWorkers int) {
	base := r.find("contended", "baseline", maxWorkers)
	live := r.find("contended", "sharded", maxWorkers)
	if base != nil && live != nil && live.NsPerOp > 0 {
		r.Summary.ContendedSpeedup = base.NsPerOp / live.NsPerOp
		r.Summary.ContendedWorkers = maxWorkers
		r.Summary.BaselineNsPerOp = base.NsPerOp
		r.Summary.ShardedNsPerOp = live.NsPerOp
	}
	if s := r.find("warm_hit", "baseline", 1); s != nil {
		r.Summary.WarmBaselineAllocs = s.AllocsPerOp
	}
	if s := r.find("warm_hit", "sharded", 1); s != nil {
		r.Summary.WarmClonedAllocs = s.AllocsPerOp
	}
	if s := r.find("warm_hit_shared", "sharded", 1); s != nil {
		r.Summary.WarmSharedAllocs = s.AllocsPerOp
	}
	if pf, k := r.find("kernel_warm", "perfeature", 1), r.find("kernel_warm", "kernel", 1); pf != nil && k != nil && k.NsPerOp > 0 {
		r.Summary.KernelSpeedup = pf.NsPerOp / k.NsPerOp
		r.Summary.KernelPerFeatureNs = pf.NsPerOp
		r.Summary.KernelNsPerOp = k.NsPerOp
	}
	if pf, k := r.find("kernel_cold", "perfeature", 1), r.find("kernel_cold", "kernel", 1); pf != nil && k != nil && k.NsPerOp > 0 {
		r.Summary.KernelColdSpeedup = pf.NsPerOp / k.NsPerOp
	}
	if full, delta := r.find("incremental_1", "full", 1), r.find("incremental_1", "delta", 1); full != nil && delta != nil && delta.NsPerOp > 0 {
		r.Summary.IncrementalSpeedup1 = full.NsPerOp / delta.NsPerOp
		r.Summary.IncrementalFullNs = full.NsPerOp
		r.Summary.IncrementalDeltaNs = delta.NsPerOp
	}
	if full, delta := r.find("incremental_k", "full", 1), r.find("incremental_k", "delta", 1); full != nil && delta != nil && delta.NsPerOp > 0 {
		r.Summary.IncrementalSpeedupK = full.NsPerOp / delta.NsPerOp
	}
}

// measure times reps runs of one scenario and keeps the fastest, the
// usual defence against scheduler noise on shared CI machines. setup
// runs outside the timed region and returns the body to time.
func measure(scenario, impl string, workers, reps, ops int, setup func() func()) series {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		body := setup()
		runtime.GC()
		start := time.Now()
		body()
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return series{
		Scenario: scenario, Impl: impl, Workers: workers, Ops: ops,
		NsPerOp:   best * 1e9 / float64(ops),
		OpsPerSec: float64(ops) / best,
	}
}

// measureInterleaved times several competing bodies round-robin — rep 1
// of every contender, then rep 2, … — keeping each contender's fastest
// rep. Head-to-head series produced this way share the machine's slow
// and fast phases instead of each owning a different stretch of time.
func measureInterleaved(scenario string, workers, reps, ops int, cs []contender) []series {
	best := make([]float64, len(cs))
	for i := range best {
		best[i] = math.MaxFloat64
	}
	for r := 0; r < reps; r++ {
		for i, c := range cs {
			runtime.GC()
			start := time.Now()
			c.body()
			if d := time.Since(start).Seconds(); d < best[i] {
				best[i] = d
			}
		}
	}
	out := make([]series, len(cs))
	for i, c := range cs {
		out[i] = series{
			Scenario: scenario, Impl: c.impl, Workers: workers, Ops: ops,
			NsPerOp:   best[i] * 1e9 / float64(ops),
			OpsPerSec: float64(ops) / best[i],
		}
	}
	return out
}

// measureAllocs is measure for single-threaded bodies, adding exact
// allocation counts from the runtime's per-process malloc counters
// (valid only because nothing else runs during the timed region).
func measureAllocs(scenario, impl string, reps, ops int, body func(n int)) series {
	best := math.MaxFloat64
	allocs, bytes := math.MaxFloat64, math.MaxFloat64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		body(ops / 10) // warm the pools outside the measured region
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		body(ops)
		d := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		if d < best {
			best = d
		}
		if a := float64(ms1.Mallocs-ms0.Mallocs) / float64(ops); a < allocs {
			allocs = a
			bytes = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(ops)
		}
	}
	return series{
		Scenario: scenario, Impl: impl, Workers: 1, Ops: ops,
		NsPerOp:     best * 1e9 / float64(ops),
		OpsPerSec:   float64(ops) / best,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
	}
}

func mustRadius(_ core.RadiusResult, err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// ---------------------------------------------------------------------------
// Frozen baseline: the cache as it stood before sharding — one global
// mutex, a string key materialised on every lookup, a defensive boundary
// clone on every hit, no miss coalescing. Kept verbatim (minus the
// injection-failure branches the benchmark never takes) so BENCH_5.json
// compares the live cache against the real predecessor, not a strawman.
// ---------------------------------------------------------------------------

type baselineCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
}

type baselineEntry struct {
	key    string
	impact core.Impact
	result core.RadiusResult
}

func newBaselineCache(capacity int) *baselineCache {
	return &baselineCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

func (c *baselineCache) radius(f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, error) {
	ctx := context.Background()
	key, ok := baselineKey(f, p, opts.WithDefaults())
	if !ok {
		return core.ComputeRadius(f, p, opts)
	}
	// The old hot path consulted the trace and fault contexts on every
	// lookup; keep those no-op calls so the baseline is not penalised
	// for work the live path also does.
	gsp := obs.StartSpan(ctx, "cache_get")
	if err := faults.Inject(ctx, faults.CacheGet); err != nil {
		gsp.End(err)
		return core.RadiusResult{}, err
	}
	c.mu.Lock()
	if el, found := c.entries[key]; found {
		c.order.MoveToFront(el)
		c.hits++
		res := el.Value.(*baselineEntry).result
		c.mu.Unlock()
		gsp.Set("hit", "true")
		gsp.End(nil)
		res.Boundary = vecmath.Clone(res.Boundary)
		res.Feature = f.Name
		return res, nil
	}
	c.mu.Unlock()
	gsp.Set("hit", "false")
	gsp.End(nil)

	res, err := core.ComputeRadius(f, p, opts)
	if err != nil {
		return core.RadiusResult{}, err
	}
	psp := obs.StartSpan(ctx, "cache_put")
	if err := faults.Inject(ctx, faults.CachePut); err != nil {
		psp.End(err)
		return res, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, found := c.entries[key]; !found {
		c.entries[key] = c.order.PushFront(&baselineEntry{key: key, impact: f.Impact, result: res})
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*baselineEntry).key)
		}
	}
	c.misses++
	stored := res
	stored.Boundary = vecmath.Clone(stored.Boundary)
	psp.End(nil)
	return stored, nil
}

func baselineKey(f core.Feature, p core.Perturbation, opts core.Options) (string, bool) {
	b := make([]byte, 0, 64+8*len(p.Orig))
	switch imp := f.Impact.(type) {
	case *core.LinearImpact:
		b = append(b, 'L')
		b = baselineFloats(b, imp.Coeffs)
		b = baselineFloat(b, imp.Offset)
	default:
		v := reflect.ValueOf(f.Impact)
		switch v.Kind() {
		case reflect.Pointer, reflect.Func, reflect.Map, reflect.Chan, reflect.UnsafePointer:
			b = append(b, 'P')
			b = binary.LittleEndian.AppendUint64(b, uint64(v.Pointer()))
		default:
			return "", false
		}
	}
	b = append(b, '|')
	b = baselineFloat(b, f.Bounds.Min)
	b = baselineFloat(b, f.Bounds.Max)
	b = append(b, '|')
	b = baselineFloats(b, p.Orig)
	b = append(b, '|')
	b = append(b, opts.Norm.Name()...)
	if w, ok := opts.Norm.(*vecmath.WeightedL2); ok {
		b = baselineFloats(b, w.W)
	}
	b = append(b, '|')
	s := opts.Solver
	b = baselineFloats(b, []float64{s.Tol, float64(s.MaxIter), float64(s.Restarts), float64(s.Seed), s.GradStep, s.RayMax})
	a := opts.Anneal
	b = baselineFloats(b, []float64{float64(a.Steps), a.InitialTemp, a.FinalTemp, a.Sigma, float64(a.Seed), a.Tol, a.RayMax})
	return string(b), true
}

func baselineFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func baselineFloats(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(vs)))
	for _, v := range vs {
		b = baselineFloat(b, v)
	}
	return b
}
