// Command table2 regenerates the paper's Table 2 analogue: from the
// Figure 4 population it extracts the pair of mappings with nearly
// identical slack and the largest robustness ratio, and prints them in the
// paper's layout — robustness, slack, the binding sensor loads λ*, the
// per-machine application assignments, and the computation-time functions.
//
// The paper's exact numbers (353 vs 1166 at slack ≈ 0.59) are not
// recoverable because the underlying DAG and latency-bound draws were
// never published; DESIGN.md documents the substitution. The phenomenon —
// a ≥3× robustness gap at a sub-0.01 slack gap — is what this command
// demonstrates.
//
// Usage:
//
//	table2 [-seed N] [-n mappings] [-slacktol T]
package main

import (
	"flag"
	"fmt"
	"log"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table2: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	n := flag.Int("n", 1000, "number of random mappings scanned")
	slackTol := flag.Float64("slacktol", 0.01, "maximum slack difference between the pair")
	flag.Parse()

	cfg := experiments.PaperFig4Config()
	cfg.Seed = *seed
	cfg.Mappings = *n
	res, err := experiments.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pair, err := experiments.FindTable2Pair(res, *slackTol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(pair.Report())
}
