// Command fepia runs the FePIA step-4 analysis on an arbitrary system
// described as JSON (see internal/spec for the format): it computes every
// feature's robustness radius and the aggregate robustness metric, without
// writing any Go code.
//
// Usage:
//
//	fepia system.json            # human-readable report
//	fepia -json system.json      # machine-readable result on stdout
//	fepia -demo                  # analyse a built-in example spec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/core"
	"fepia/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fepia: ")
	asJSON := flag.Bool("json", false, "emit the analysis as JSON instead of a report")
	demo := flag.Bool("demo", false, "analyse a built-in example spec")
	flag.Parse()

	var data []byte
	switch {
	case *demo:
		data = []byte(demoSpec)
	case flag.NArg() == 1:
		var err error
		data, err = os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: fepia [-json] system.json | fepia -demo")
		os.Exit(2)
	}

	sys, err := spec.Parse(data)
	if err != nil {
		log.Fatal(err)
	}
	a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec.Encode(sys.Name, a)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if sys.Name != "" {
		fmt.Printf("system: %s\n", sys.Name)
	}
	fmt.Print(a)
	if cf := a.CriticalFeature(); cf != nil && cf.Boundary != nil {
		fmt.Printf("boundary point π* of the critical feature: %.6v\n", cf.Boundary)
	}
}

// demoSpec is the three-tier web-farm example from examples/customsystem,
// expressed as a spec document (linearised around the operating point for
// the edge tier, exact convex terms for the db tier).
const demoSpec = `{
  "name": "three-tier web farm (demo)",
  "perturbation": {"name": "λ", "orig": [300, 200], "units": "requests/s"},
  "features": [
    {"name": "load(edge)", "max": 1100,
     "impact": {"type": "linear", "coeffs": [1.0, 1.0]}},
    {"name": "load(app)", "max": 850,
     "impact": {"type": "linear", "coeffs": [0.4, 1.0]}},
    {"name": "work(db)", "max": 250000,
     "impact": {"type": "terms", "terms": [
       {"kind": "power", "index": 0, "coeff": 1.5, "p": 2},
       {"kind": "xlogx", "index": 1, "coeff": 40.0}
     ]}}
  ]
}`
