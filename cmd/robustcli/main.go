// Command robustcli computes the §3.1 robustness analysis of a mapping
// supplied as JSON — the downstream-user entry point for one-off
// evaluations.
//
// The input format is the serialisation of internal/hcs.Mapping:
//
//	{"etc": [[t00, t01], [t10, t11], ...], "assign": [m0, m1, ...]}
//
// where etc[i][j] is the estimated time of application i on machine j and
// assign[i] is the machine application i is mapped to.
//
// With -slowdown, the analysis switches to the second derivation for the
// same system: per-machine slowdown factors as the perturbation parameter
// (the tolerable slowdown of machine j alone is 1 + r_j).
//
// Usage:
//
//	robustcli -tau 1.2 mapping.json
//	robustcli -demo             # run on a small built-in example
//	robustcli -demo -slowdown   # machine-slowdown robustness instead
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"fepia/internal/hcs"
	"fepia/internal/indalloc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("robustcli: ")
	tau := flag.Float64("tau", 1.2, "makespan tolerance multiplier (τ ≥ 1)")
	demo := flag.Bool("demo", false, "analyse a built-in example instead of reading a file")
	slowdown := flag.Bool("slowdown", false, "analyse robustness against machine slowdowns instead of ETC errors")
	flag.Parse()

	var m hcs.Mapping
	switch {
	case *demo:
		if err := json.Unmarshal([]byte(demoJSON), &m); err != nil {
			log.Fatal(err)
		}
		fmt.Println("analysing built-in demo mapping:")
		fmt.Println(demoJSON)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(data, &m); err != nil {
			log.Fatalf("parsing %s: %v", flag.Arg(0), err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *slowdown {
		res, err := indalloc.EvaluateSlowdown(&m, *tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npredicted makespan M^orig       = %.6g\n", res.PredictedMakespan)
		fmt.Printf("robustness ρ_μ(Φ, s)            = %.6g (relative slowdown)\n", res.Robustness)
		fmt.Printf("critical machine                = m%d (the makespan machine)\n", res.CriticalMachine)
		fmt.Println("\nper-machine tolerable slowdowns 1 + r_μ(F_j, s):")
		for j, r := range res.Radii {
			if math.IsInf(r, 1) {
				fmt.Printf("  m%-2d  ∞ (no applications)\n", j)
				continue
			}
			fmt.Printf("  m%-2d  %.4f×\n", j, 1+r)
		}
		return
	}

	res, err := indalloc.Evaluate(&m, *tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted makespan M^orig       = %.6g\n", res.PredictedMakespan)
	fmt.Printf("tolerance bound τ·M^orig        = %.6g\n", *tau*res.PredictedMakespan)
	fmt.Printf("robustness ρ_μ(Φ, C)            = %.6g (time units of the ETC matrix)\n", res.Robustness)
	fmt.Printf("critical machine                = m%d\n", res.CriticalMachine)
	fmt.Println("\nper-machine robustness radii r_μ(F_j, C):")
	for j, r := range res.Radii {
		idle := ""
		if math.IsInf(r, 1) {
			idle = "  (no applications: can never violate)"
		}
		fmt.Printf("  m%-2d  %.6g%s\n", j, r, idle)
	}
	fmt.Println("\nclosest violating execution-time vector C*:")
	orig := m.ETCVector()
	for i, c := range res.BoundaryETC {
		delta := c - orig[i]
		marker := ""
		if delta != 0 {
			marker = fmt.Sprintf("  (+%.6g)", delta)
		}
		fmt.Printf("  a%-2d  %.6g%s\n", i, c, marker)
	}
}

// demoJSON is a 6-application, 3-machine example with an uneven load.
const demoJSON = `{
  "etc": [[4,6,9],[3,7,8],[6,2,5],[9,3,3],[2,8,7],[5,5,4]],
  "assign": [0, 0, 1, 2, 0, 2]
}`
