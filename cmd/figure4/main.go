// Command figure4 regenerates the paper's Figure 4 (§4.3): robustness
// against slack for 1000 randomly generated mappings of a HiPer-D instance
// with 19 paths, 3 sensors, and 5 machines.
//
// Usage:
//
//	figure4 [-seed N] [-n mappings] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure4: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	n := flag.Int("n", 1000, "number of random mappings")
	csvPath := flag.String("csv", "", "also write the per-mapping series as CSV to this path")
	workers := flag.Int("workers", 0, "worker goroutines for the mapping evaluations (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := experiments.PaperFig4Config()
	cfg.Seed = *seed
	cfg.Mappings = *n
	cfg.Workers = *workers
	res, err := experiments.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
