// Command heuristicstudy runs the full mapping-heuristic suite (the eleven
// Braun et al. heuristics, Sufferage, and the robustness-aware variants)
// on §4.2-distributed instances and reports, per heuristic, the makespan,
// the robustness metric ρ (Eq. 7), the load-balance index, and the ratios
// against Min-min — the ablation table for the "optimise ρ directly"
// extension.
//
// Usage:
//
//	heuristicstudy [-seed N] [-trials N] [-tau T] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("heuristicstudy: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	trials := flag.Int("trials", 10, "number of random instances to average over")
	tau := flag.Float64("tau", 1.2, "makespan tolerance multiplier")
	csvPath := flag.String("csv", "", "also write the table as CSV to this path")
	workers := flag.Int("workers", 0, "worker goroutines for the trial×heuristic grid (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := experiments.PaperHeurStudyConfig()
	cfg.Seed = *seed
	cfg.Trials = *trials
	cfg.Tau = *tau
	cfg.Workers = *workers
	res, err := experiments.RunHeurStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
