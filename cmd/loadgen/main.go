// Command loadgen hammers a fepiad instance with generated spec documents
// in the style of the paper's §3.1/§3.2 systems (random machine
// finishing-time hyperplanes plus occasional convex queueing features) and
// reports throughput and latency percentiles — the `make loadtest` target.
//
//	loadgen -self                      # spin up an in-process fepiad and hammer it
//	loadgen -url http://host:8080      # hammer a running instance
//	loadgen -n 5000 -c 64 -batch 16    # 5000 requests, 64 clients, 16 systems each
//
// The generator is seeded, so two runs with the same flags submit the
// identical workload. Systems are drawn from a bounded pool (default 64
// distinct systems) to exercise the server's shared radius cache the way
// the paper's 1000-mapping experiments do: heavy structural overlap.
//
// Shed requests (503) are treated as back-pressure, not failures: the
// client honors the server's Retry-After hint and re-submits up to
// -retry-503 times, so saturation reports real serving latency. Degraded
// responses (Warning header) are counted separately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fepia/internal/obs"
	"fepia/internal/server"
	"fepia/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		url      = flag.String("url", "http://localhost:8080", "fepiad base URL")
		self     = flag.Bool("self", false, "start an in-process fepiad on a random port and hammer it")
		n        = flag.Int("n", 2000, "total requests")
		c        = flag.Int("c", 32, "concurrent clients")
		batch    = flag.Int("batch", 8, "systems per request (1 = POST /v1/analyze, else /v1/batch)")
		pool     = flag.Int("pool", 64, "distinct systems in the workload pool")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		retry503 = flag.Int("retry-503", 3, "re-submissions of a shed (503) request after honoring Retry-After (0 = fail immediately)")
		maxWait  = flag.Duration("max-retry-after", 5*time.Second, "cap on a single honored Retry-After wait")
		jsonOut  = flag.Bool("json", false, "emit the report as one JSON document on stdout (for CI and dashboards)")
	)
	flag.Parse()

	base := *url
	if *self {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		s := server.New(server.Config{MaxInFlight: 2 * *c,
			Log: obs.NewLogger(os.Stderr, "text", slog.LevelWarn).With("service", "fepiad")})
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- s.Run(ctx, l) }()
		defer func() {
			cancel()
			<-done
			cs := s.CacheStats()
			log.Printf("server cache: %d hits / %d misses (%.1f%% hit rate), %d/%d entries",
				cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Size, cs.Capacity)
		}()
		base = "http://" + l.Addr().String()
	}

	bodies := buildWorkload(rand.New(rand.NewSource(*seed)), *n, *batch, *pool)
	endpoint := base + "/v1/batch"
	if *batch <= 1 {
		endpoint = base + "/v1/analyze"
	}
	client := &http.Client{Timeout: *timeout}

	// All clients observe into one shared lock-free histogram — the same
	// obs instrument the server's own latency metrics use — and the
	// percentiles below come from its bucket interpolation.
	var (
		next      atomic.Int64
		okCount   atomic.Int64
		failCount atomic.Int64
		shedCount atomic.Int64
		degCount  atomic.Int64
		latency   = obs.NewHistogram(nil)
	)
	log.Printf("%d requests × %d systems → %s over %d clients", *n, *batch, endpoint, *c)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					break
				}
				// A 503 is back-pressure, not an outcome: honor the
				// server's Retry-After hint before re-submitting, so a
				// saturated run reports the latency of served requests
				// instead of a wall of instant failures. Only the serving
				// attempt's own duration enters the latency report.
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err := client.Post(endpoint, "application/json", strings.NewReader(bodies[i]))
					if err != nil {
						failCount.Add(1)
						break
					}
					drain(resp)
					if resp.StatusCode == http.StatusServiceUnavailable && attempt < *retry503 {
						shedCount.Add(1)
						time.Sleep(retryAfterDelay(resp, *maxWait))
						continue
					}
					if resp.StatusCode == http.StatusOK {
						if resp.Header.Get("Warning") != "" {
							degCount.Add(1) // served degraded from the radius cache
						}
						okCount.Add(1)
						latency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
					} else {
						failCount.Add(1)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := latency.Snapshot()
	rep := report{
		Requests:  *n,
		OK:        okCount.Load(),
		Failed:    failCount.Load(),
		Shed:      shedCount.Load(),
		Degraded:  degCount.Load(),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if rep.OK > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
		rep.Analyses = rep.Throughput * float64(*batch)
		rep.Latency = &latencyReport{
			P50MS:  snap.Quantile(0.50),
			P90MS:  snap.Quantile(0.90),
			P99MS:  snap.Quantile(0.99),
			MaxMS:  snap.Max,
			MeanMS: snap.Mean(),
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("requests: %d ok, %d failed in %v\n", rep.OK, rep.Failed, elapsed.Round(time.Millisecond))
		if rep.Shed > 0 {
			fmt.Printf("back-pressure: %d sheds (503) honored via Retry-After\n", rep.Shed)
		}
		if rep.Degraded > 0 {
			fmt.Printf("degraded: %d responses served from the radius cache\n", rep.Degraded)
		}
		if lr := rep.Latency; lr != nil {
			fmt.Printf("throughput: %.0f req/s (%.0f analyses/s)\n", rep.Throughput, rep.Analyses)
			fmt.Printf("latency: p50 %.3gms  p90 %.3gms  p99 %.3gms  mean %.3gms  max %.3gms\n",
				lr.P50MS, lr.P90MS, lr.P99MS, lr.MeanMS, lr.MaxMS)
		}
		printServerCache(client, base)
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json). Latency quantiles
// are bucket-interpolated estimates from the shared obs histogram, in
// milliseconds; Max and Mean are exact over the served requests.
type report struct {
	Requests   int            `json:"requests"`
	OK         int64          `json:"ok"`
	Failed     int64          `json:"failed"`
	Shed       int64          `json:"shed"`
	Degraded   int64          `json:"degraded"`
	ElapsedMS  float64        `json:"elapsed_ms"`
	Throughput float64        `json:"throughput_rps,omitempty"`
	Analyses   float64        `json:"analyses_per_sec,omitempty"`
	Latency    *latencyReport `json:"latency,omitempty"`
}

type latencyReport struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// drain empties and closes a response body so connections are reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// retryAfterDelay decodes a 503's Retry-After hint (delta-seconds form),
// bounded by max; an absent or malformed header waits 100ms.
func retryAfterDelay(resp *http.Response, max time.Duration) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > max {
		d = max
	}
	return d
}

// buildWorkload pre-serialises every request body: n requests of `batch`
// systems each, drawn from a pool of `pool` distinct generated systems.
func buildWorkload(rng *rand.Rand, n, batch, pool int) []string {
	systems := make([]string, pool)
	for i := range systems {
		doc, err := json.Marshal(genSystem(rng, i))
		if err != nil {
			log.Fatal(err)
		}
		systems[i] = string(doc)
	}
	bodies := make([]string, n)
	for i := range bodies {
		if batch <= 1 {
			bodies[i] = systems[rng.Intn(pool)]
			continue
		}
		picks := make([]string, batch)
		for j := range picks {
			picks[j] = systems[rng.Intn(pool)]
		}
		bodies[i] = `{"systems": [` + strings.Join(picks, ",") + `]}`
	}
	return bodies
}

// genSystem draws one report-style system: a handful of machines whose
// finishing times are 0/1 sums of ETC entries bounded by τ·makespan
// (§3.1), plus one convex queueing-style feature in every fourth system
// (§3.2 forms).
func genSystem(rng *rand.Rand, id int) spec.File {
	apps := 4 + rng.Intn(5)
	machines := 2 + rng.Intn(3)
	orig := make([]float64, apps)
	for i := range orig {
		orig[i] = 1 + 9*rng.Float64()
	}
	assign := make([]int, apps)
	finish := make([]float64, machines)
	for i := range assign {
		assign[i] = rng.Intn(machines)
		finish[assign[i]] += orig[i]
	}
	makespan := 0.0
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	tau := 1.2 + 0.3*rng.Float64()
	f := spec.File{
		Name:         fmt.Sprintf("gen-%d", id),
		Perturbation: spec.PerturbationSpec{Name: "C", Orig: orig, Units: "s"},
	}
	for m := 0; m < machines; m++ {
		coeffs := make([]float64, apps)
		for i, mi := range assign {
			if mi == m {
				coeffs[i] = 1
			}
		}
		max := tau * makespan
		f.Features = append(f.Features, spec.FeatureSpec{
			Name:   fmt.Sprintf("finish(m%d)", m),
			Max:    &max,
			Impact: spec.ImpactSpec{Type: "linear", Coeffs: coeffs},
		})
	}
	if id%4 == 0 {
		max := 100 * makespan * makespan
		f.Features = append(f.Features, spec.FeatureSpec{
			Name: "queue",
			Max:  &max,
			Impact: spec.ImpactSpec{Type: "terms", Terms: []spec.TermSpec{
				{Kind: "power", Index: 0, Coeff: 1 + rng.Float64(), P: 2},
				{Kind: "xlogx", Index: 1 % apps, Coeff: 1 + rng.Float64()},
			}},
		})
	}
	return f
}

// printServerCache fetches /debug/vars and prints the shared-cache line,
// best-effort (a load test against a remote instance may not expose it).
func printServerCache(client *http.Client, base string) {
	resp, err := client.Get(base + "/debug/vars")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var vars struct {
		Cache struct {
			Hits, Misses   uint64
			Size, Capacity int
			HitRate        float64 `json:"hit_rate"`
		} `json:"fepiad.cache"`
	}
	if json.NewDecoder(resp.Body).Decode(&vars) != nil {
		return
	}
	fmt.Printf("server cache: %d hits / %d misses (%.1f%% hit rate), %d/%d entries\n",
		vars.Cache.Hits, vars.Cache.Misses, 100*vars.Cache.HitRate, vars.Cache.Size, vars.Cache.Capacity)
}
