// Command loadgen hammers a fepiad instance with generated spec documents
// in the style of the paper's §3.1/§3.2 systems (random machine
// finishing-time hyperplanes plus occasional convex queueing features) and
// reports throughput and latency percentiles — the `make loadtest` target.
//
//	loadgen -self                      # spin up an in-process fepiad and hammer it
//	loadgen -self -nodes 3             # spin up a 3-node in-process ring
//	loadgen -url http://host:8080      # hammer a running instance
//	loadgen -url http://a:8080,http://b:8080   # spray a cluster, failover on node death
//	loadgen -n 5000 -c 64 -batch 16    # 5000 requests, 64 clients, 16 systems each
//	loadgen -self -watch 16            # stream 16-step /v1/watch sessions instead
//
// The generator is seeded, so two runs with the same flags submit the
// identical workload. Systems are drawn from a bounded pool (default 64
// distinct systems) to exercise the server's shared radius cache the way
// the paper's 1000-mapping experiments do: heavy structural overlap.
//
// Cluster mode (docs/CLUSTER.md): -self -nodes N boots an in-process
// consistent-hash ring; -url takes a comma-separated list of node base
// URLs and spreads requests round-robin, failing over to the next node
// when one stops answering — so killing a node mid-run sheds no client
// requests. The report counts forwarded responses (X-Fepiad-Forwarded)
// and per-node serving totals (X-Fepiad-Node).
//
// Shed requests (503) are treated as back-pressure, not failures: the
// client honors the server's Retry-After hint and re-submits up to
// -retry-503 times, so saturation reports real serving latency. Degraded
// responses (Warning header) are counted separately.
//
// Watch mode: -watch S turns every request into a POST /v1/watch
// streaming session over an S-step trajectory of the picked system's
// operating point (one coordinate nudged per step — the incremental
// engine's shape). The client consumes the ndjson stream, counts frames
// and changed radii, and fails the request if the stream ends without a
// clean summary. Latency percentiles then measure whole sessions.
//
// Observability hooks: -report-traces N lists the N slowest served
// requests with their request and trace IDs (X-Fepiad-Trace-Id) — paste
// a trace ID into the server's /debug/traces to see the per-stage,
// cross-node span tree — and the report scores the run against
// client-side SLOs (-slo-availability, -slo-latency-p99) in the same
// burn-rate shape as the server's fepiad_slo_burn_rate gauges.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/obs"
	"fepia/internal/server"
	"fepia/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		url      = flag.String("url", "http://localhost:8080", "fepiad base URL, or a comma-separated list of cluster node URLs (round-robin with failover)")
		self     = flag.Bool("self", false, "start an in-process fepiad on a random port and hammer it")
		nodes    = flag.Int("nodes", 1, "with -self: boot this many in-process fepiad nodes as a consistent-hash ring")
		cacheCap = flag.Int("cache", 0, "with -self: per-node radius-cache capacity in entries (0 = default)")
		n        = flag.Int("n", 2000, "total requests")
		c        = flag.Int("c", 32, "concurrent clients")
		batch    = flag.Int("batch", 8, "systems per request (1 = POST /v1/analyze, else /v1/batch)")
		pool     = flag.Int("pool", 64, "distinct systems in the workload pool")
		heavy    = flag.Int("heavy", 0, "convex terms features added to every generated system (makes cache misses pay the numeric solver; the cluster bench workload)")
		cycle    = flag.Bool("cycle", false, "draw systems round-robin from the pool instead of randomly (deterministic LRU thrash when the pool outsizes the cache)")
		warmup   = flag.Bool("warmup", false, "submit each pooled system once, untimed, before the run (measures warm-cache serving)")
		kill     = flag.String("kill", "", "with -self: kill node i once a fraction f of requests have been issued, as i@f (e.g. 1@0.5) — the chaos story")
		watch    = flag.Int("watch", 0, "steps per /v1/watch session; > 0 makes every request a streaming watch session over a generated trajectory (overrides -batch)")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		retry503 = flag.Int("retry-503", 3, "re-submissions of a shed (503) request after honoring Retry-After (0 = fail immediately)")
		maxWait  = flag.Duration("max-retry-after", 5*time.Second, "cap on a single honored Retry-After wait")
		jsonOut  = flag.Bool("json", false, "emit the report as one JSON document on stdout (for CI and dashboards)")

		reportTraces = flag.Int("report-traces", 0, "include the N slowest served requests in the report, with their request ID, trace ID (X-Fepiad-Trace-Id), and serving node — paste the trace ID into /debug/traces")
		sloLatency   = flag.Float64("slo-latency-p99", 500, "client-side p99 latency objective in milliseconds for the report's SLO burn rates")
		sloAvail     = flag.Float64("slo-availability", 0.999, "client-side availability objective in (0,1) for the report's SLO burn rates")
	)
	flag.Parse()

	bases := splitURLs(*url)
	var killNode func(int)
	if *self {
		ring, killFn, stop := startSelfRing(*nodes, *cacheCap, 2**c)
		defer stop()
		bases, killNode = ring, killFn
	}
	if len(bases) == 0 {
		log.Fatal("no fepiad URL to hammer")
	}
	killIdx, killAt := parseKill(*kill, *n, *nodes, killNode != nil)

	var bodies, poolDocs []string
	path := "/v1/batch"
	if *batch <= 1 {
		path = "/v1/analyze"
	}
	if *watch > 0 {
		if *warmup {
			log.Fatal("-warmup makes no sense with -watch: kernel delta steps bypass the radius cache")
		}
		bodies = buildWatchWorkload(rand.New(rand.NewSource(*seed)), *n, *pool, *heavy, *watch, *cycle)
		path = "/v1/watch"
	} else {
		bodies, poolDocs = buildWorkload(rand.New(rand.NewSource(*seed)), *n, *batch, *pool, *heavy, *cycle)
	}
	client := &http.Client{Timeout: *timeout}

	if *warmup {
		// One untimed pass over the distinct systems so the run measures
		// warm serving. Spraying round-robin warms whichever node owns
		// each key: forwarding routes the document to its ring arc.
		var noFailover atomic.Int64
		for i, doc := range poolDocs {
			if *batch > 1 {
				doc = `{"systems": [` + doc + `]}`
			}
			resp, err := postAny(client, bases, i, path, doc, &noFailover)
			if err != nil {
				log.Fatalf("warmup: %v", err)
			}
			drain(resp)
		}
		log.Printf("warmed %d distinct systems", len(poolDocs))
	}

	// All clients observe into one shared lock-free histogram — the same
	// obs instrument the server's own latency metrics use — and the
	// percentiles below come from its bucket interpolation.
	var (
		next      atomic.Int64
		okCount   atomic.Int64
		failCount atomic.Int64
		shedCount atomic.Int64
		degCount  atomic.Int64
		fwdCount  atomic.Int64
		wFrames   atomic.Int64
		wChanged  atomic.Int64
		failovers atomic.Int64
		latency   = obs.NewHistogram(nil)
		slowOver  atomic.Int64 // served requests past the latency objective
		slowest   = newSlowList(*reportTraces)
		nodeMu    sync.Mutex
		perNode   = map[string]int64{}
		// The first served response's meta.cache value ("hit" when the
		// server booted from a warm snapshot) — the restart bench's signal.
		firstTaken atomic.Bool
		firstCache atomic.Value
	)
	log.Printf("%d requests × %d systems → %s on %d node(s) over %d clients", *n, *batch, path, len(bases), *c)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					break
				}
				// The chaos story: exactly one worker claims the kill
				// index and takes the node down mid-run; every other
				// client rides through on failover + degraded serving.
				if killAt > 0 && i == killAt {
					log.Printf("killing node n%d at request %d", killIdx, i)
					killNode(killIdx)
				}
				// A 503 is back-pressure, not an outcome: honor the
				// server's Retry-After hint before re-submitting, so a
				// saturated run reports the latency of served requests
				// instead of a wall of instant failures. Only the serving
				// attempt's own duration enters the latency report.
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					resp, err := postAny(client, bases, i+attempt, path, bodies[i], &failovers)
					if err != nil {
						failCount.Add(1)
						break
					}
					// Watch sessions stream: the body must be consumed frame
					// by frame before the session counts as served, and the
					// timed region covers the whole stream.
					var watchErr error
					switch {
					case *watch > 0 && resp.StatusCode == http.StatusOK:
						var frames, changed int64
						frames, changed, watchErr = consumeWatch(resp)
						wFrames.Add(frames)
						wChanged.Add(changed)
					case resp.StatusCode == http.StatusOK && firstTaken.CompareAndSwap(false, true):
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						firstCache.Store(metaCache(body))
					default:
						drain(resp)
					}
					if resp.StatusCode == http.StatusServiceUnavailable && attempt < *retry503 {
						shedCount.Add(1)
						time.Sleep(retryAfterDelay(resp, *maxWait))
						continue
					}
					if resp.StatusCode == http.StatusOK {
						if watchErr != nil {
							failCount.Add(1)
							break
						}
						if resp.Header.Get("Warning") != "" {
							degCount.Add(1) // served degraded from the radius cache
						}
						if resp.Header.Get(cluster.ForwardedHeader) == "true" {
							fwdCount.Add(1) // relayed to its ring owner
						}
						if node := resp.Header.Get(cluster.NodeHeader); node != "" {
							nodeMu.Lock()
							perNode[node]++
							nodeMu.Unlock()
						}
						okCount.Add(1)
						durMS := float64(time.Since(t0)) / float64(time.Millisecond)
						latency.Observe(durMS)
						if durMS > *sloLatency {
							slowOver.Add(1)
						}
						slowest.add(slowTrace{
							RequestID:  resp.Header.Get("X-Request-Id"),
							TraceID:    resp.Header.Get(cluster.TraceIDHeader),
							Node:       resp.Header.Get(cluster.NodeHeader),
							DurationMS: durMS,
						})
					} else {
						failCount.Add(1)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := latency.Snapshot()
	rep := report{
		Requests:  *n,
		OK:        okCount.Load(),
		Failed:    failCount.Load(),
		Shed:      shedCount.Load(),
		Degraded:  degCount.Load(),
		Forwarded: fwdCount.Load(),
		Failovers: failovers.Load(),
		PerNode:   perNode,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if killAt > 0 {
		rep.Killed = fmt.Sprintf("n%d@%d", killIdx, killAt)
	}
	if fc, ok := firstCache.Load().(string); ok {
		rep.FirstCache = fc
	}
	if *watch > 0 {
		rep.WatchSteps = *watch
		rep.WatchFrames = wFrames.Load()
		rep.WatchChanged = wChanged.Load()
	}
	if rep.OK > 0 {
		rep.Throughput = float64(rep.OK) / elapsed.Seconds()
		rep.Analyses = rep.Throughput * float64(*batch)
		if *watch > 0 {
			// Every streamed frame is one analysed operating point.
			rep.Analyses = float64(rep.WatchFrames) / elapsed.Seconds()
		}
		rep.Latency = &latencyReport{
			P50MS:  snap.Quantile(0.50),
			P90MS:  snap.Quantile(0.90),
			P99MS:  snap.Quantile(0.99),
			MaxMS:  snap.Max,
			MeanMS: snap.Mean(),
		}
		rep.SLO = burnReport(rep.OK, rep.Failed, slowOver.Load(), *sloAvail, *sloLatency)
	}
	rep.SlowTraces = slowest.list()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("requests: %d ok, %d failed in %v\n", rep.OK, rep.Failed, elapsed.Round(time.Millisecond))
		if rep.Shed > 0 {
			fmt.Printf("back-pressure: %d sheds (503) honored via Retry-After\n", rep.Shed)
		}
		if rep.Degraded > 0 {
			fmt.Printf("degraded: %d responses served from the radius cache\n", rep.Degraded)
		}
		if rep.Forwarded > 0 || len(rep.PerNode) > 1 {
			fmt.Printf("cluster: %d forwarded to their ring owner, %d client failovers\n", rep.Forwarded, rep.Failovers)
			for node, served := range rep.PerNode {
				fmt.Printf("  node %s served %d\n", node, served)
			}
		}
		if rep.FirstCache != "" {
			fmt.Printf("first response cache: %s\n", rep.FirstCache)
		}
		if *watch > 0 {
			fmt.Printf("watch: %d sessions × %d steps, %d frames streamed, %d changed radii\n",
				rep.OK, rep.WatchSteps, rep.WatchFrames, rep.WatchChanged)
		}
		if lr := rep.Latency; lr != nil {
			fmt.Printf("throughput: %.0f req/s (%.0f analyses/s)\n", rep.Throughput, rep.Analyses)
			fmt.Printf("latency: p50 %.3gms  p90 %.3gms  p99 %.3gms  mean %.3gms  max %.3gms\n",
				lr.P50MS, lr.P90MS, lr.P99MS, lr.MeanMS, lr.MaxMS)
		}
		if sr := rep.SLO; sr != nil {
			fmt.Printf("slo: availability %.5f (burn %.2f of %.4f objective), latency over %gms: %.3f%% (burn %.2f)\n",
				sr.Availability, sr.AvailabilityBurn, sr.AvailabilityObjective,
				sr.LatencyObjectiveMS, 100*sr.LatencyOverFraction, sr.LatencyBurn)
		}
		for _, st := range rep.SlowTraces {
			fmt.Printf("slow: %.1fms request=%s trace=%s node=%s\n",
				st.DurationMS, st.RequestID, st.TraceID, st.Node)
		}
		printServerCache(client, bases[0])
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// report is the machine-readable run summary (-json). Latency quantiles
// are bucket-interpolated estimates from the shared obs histogram, in
// milliseconds; Max and Mean are exact over the served requests.
type report struct {
	Requests int   `json:"requests"`
	OK       int64 `json:"ok"`
	Failed   int64 `json:"failed"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	// Forwarded counts responses relayed to their ring owner
	// (X-Fepiad-Forwarded); Failovers counts requests the client re-aimed
	// at another node after one stopped answering; PerNode tallies served
	// responses by the node that answered (X-Fepiad-Node).
	Forwarded int64            `json:"forwarded,omitempty"`
	Failovers int64            `json:"failovers,omitempty"`
	PerNode   map[string]int64 `json:"per_node,omitempty"`
	Killed    string           `json:"killed,omitempty"`
	// FirstCache is meta.cache of the first served response: "hit" means
	// the server answered its very first request from a warm cache — the
	// snapshot-restart bench asserts exactly this.
	FirstCache string `json:"first_cache,omitempty"`
	// Watch-mode tallies (-watch S): every OK request is one streamed
	// session; WatchFrames counts frames received across all sessions and
	// WatchChanged the changed radii they carried — the incremental
	// wire's actual payload.
	WatchSteps   int            `json:"watch_steps,omitempty"`
	WatchFrames  int64          `json:"watch_frames,omitempty"`
	WatchChanged int64          `json:"watch_changed_radii,omitempty"`
	ElapsedMS    float64        `json:"elapsed_ms"`
	Throughput   float64        `json:"throughput_rps,omitempty"`
	Analyses     float64        `json:"analyses_per_sec,omitempty"`
	Latency      *latencyReport `json:"latency,omitempty"`
	// SLO is the run scored against the client-side objectives
	// (-slo-availability, -slo-latency-p99); SlowTraces are the
	// -report-traces slowest served requests, slowest first, each with
	// the trace ID to look up on the server's /debug/traces.
	SLO        *sloReport  `json:"slo,omitempty"`
	SlowTraces []slowTrace `json:"slow_traces,omitempty"`
}

type latencyReport struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// sloReport scores one run against the client-side objectives, in the
// same burn-rate shape the server's fepiad_slo_burn_rate gauges use
// (burn 1.0 = consuming exactly the error budget).
type sloReport struct {
	AvailabilityObjective float64 `json:"availability_objective"`
	Availability          float64 `json:"availability"`
	AvailabilityBurn      float64 `json:"availability_burn"`
	LatencyObjectiveMS    float64 `json:"latency_objective_ms"`
	LatencyOverFraction   float64 `json:"latency_over_fraction"`
	LatencyBurn           float64 `json:"latency_burn"`
}

// burnReport computes the run's burn rates: failed requests against the
// availability budget, served-but-slow requests against the 1% latency
// budget of a p99 objective.
func burnReport(ok, failed, slowOver int64, availObj, latObjMS float64) *sloReport {
	total := ok + failed
	if total == 0 || availObj <= 0 || availObj >= 1 {
		return nil
	}
	avail := float64(ok) / float64(total)
	overFrac := float64(slowOver) / float64(ok)
	return &sloReport{
		AvailabilityObjective: availObj,
		Availability:          avail,
		AvailabilityBurn:      (1 - avail) / (1 - availObj),
		LatencyObjectiveMS:    latObjMS,
		LatencyOverFraction:   overFrac,
		LatencyBurn:           overFrac / 0.01,
	}
}

// slowTrace is one entry of the -report-traces list: everything needed
// to find the request again on the server side.
type slowTrace struct {
	RequestID  string  `json:"request_id"`
	TraceID    string  `json:"trace_id"`
	Node       string  `json:"node,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// slowList retains the N slowest served requests, slowest first, under
// one mutex (insertion into a tiny sorted slice, same shape as the
// server's slowest-trace ring).
type slowList struct {
	mu  sync.Mutex
	cap int
	top []slowTrace
}

func newSlowList(n int) *slowList { return &slowList{cap: n} }

func (l *slowList) add(st slowTrace) {
	if l.cap <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.top) && l.top[i].DurationMS >= st.DurationMS {
		i++
	}
	if i >= l.cap {
		return
	}
	if len(l.top) < l.cap {
		l.top = append(l.top, slowTrace{})
	}
	copy(l.top[i+1:], l.top[i:])
	l.top[i] = st
}

func (l *slowList) list() []slowTrace {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]slowTrace(nil), l.top...)
}

// splitURLs parses the -url flag: a comma-separated list of base URLs,
// trimmed of whitespace and trailing slashes. Blanks are dropped.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// postAny submits one request, starting at a deterministic node (start
// rotates per request for round-robin spread) and failing over to the
// next node on transport errors — so a killed node costs the client a
// failover, never a dropped request.
func postAny(client *http.Client, bases []string, start int, path, body string, failovers *atomic.Int64) (*http.Response, error) {
	var lastErr error
	for k := 0; k < len(bases); k++ {
		resp, err := client.Post(bases[(start+k)%len(bases)]+path, "application/json", strings.NewReader(body))
		if err == nil {
			if k > 0 {
				failovers.Add(1)
			}
			return resp, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// selfNode is one in-process fepiad of a -self ring; killing it cancels
// its private context and waits for the drain, exactly once.
type selfNode struct {
	id     string
	srv    *server.Server
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// startSelfRing boots n in-process fepiad nodes on loopback listeners.
// With n > 1 the nodes form a consistent-hash ring (every node gets the
// full membership, exactly as -peers would wire it); with n == 1 it is
// the classic single-instance -self mode. Returns the node base URLs, a
// kill function that takes one node down (the -kill chaos story), and a
// stop function that drains every surviving node and logs per-node
// cache stats.
func startSelfRing(n, cacheCap, maxInFlight int) ([]string, func(int), func()) {
	if n < 1 {
		n = 1
	}
	// Listen first so every node's URL is known before any server starts:
	// ring membership must be complete and identical on all nodes.
	listeners := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	bases := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = l
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
		bases[i] = peers[i].URL
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	nodes := make([]*selfNode, n)
	for i := range nodes {
		cfg := server.Config{
			MaxInFlight:   maxInFlight,
			CacheCapacity: cacheCap,
			Degraded:      true, // match the fepiad flag default
			Log:           quiet,
		}
		if n > 1 {
			cfg.NodeID = peers[i].ID
			cfg.Peers = peers
		}
		ctx, cancel := context.WithCancel(context.Background())
		node := &selfNode{id: peers[i].ID, srv: server.New(cfg), cancel: cancel, done: make(chan struct{})}
		nodes[i] = node
		go func(l net.Listener) {
			if err := node.srv.Run(ctx, l); err != nil {
				log.Printf("self node %s exited: %v", node.id, err)
			}
			close(node.done)
		}(listeners[i])
	}
	kill := func(i int) {
		nodes[i].once.Do(func() {
			nodes[i].cancel()
			<-nodes[i].done
		})
	}
	stop := func() {
		for i := range nodes {
			kill(i)
		}
		for _, node := range nodes {
			cs := node.srv.CacheStats()
			log.Printf("node %s cache: %d hits / %d misses", node.id, cs.Hits, cs.Misses)
		}
	}
	return bases, kill, stop
}

// parseKill decodes -kill's i@f form into a node index and the request
// ordinal at which that node dies. A zero killAt disables the story.
func parseKill(s string, n, nodes int, selfRing bool) (killIdx, killAt int) {
	if s == "" {
		return 0, 0
	}
	if !selfRing {
		log.Fatal("-kill requires -self (the client cannot kill a remote node)")
	}
	var frac float64
	if _, err := fmt.Sscanf(s, "%d@%f", &killIdx, &frac); err != nil {
		log.Fatalf("bad -kill %q (want i@f, e.g. 1@0.5)", s)
	}
	if killIdx < 0 || killIdx >= nodes || frac <= 0 || frac >= 1 {
		log.Fatalf("bad -kill %q: node index in [0,%d), fraction in (0,1)", s, nodes)
	}
	killAt = int(frac * float64(n))
	if killAt < 1 {
		killAt = 1
	}
	return killIdx, killAt
}

// metaCache extracts meta.cache from a served response body. Both
// /v1/analyze and /v1/batch answers carry a top-level meta block, so one
// shape covers both endpoints; anything unparseable reports "".
func metaCache(body []byte) string {
	var doc struct {
		Meta struct {
			Cache string `json:"cache"`
		} `json:"meta"`
	}
	if json.Unmarshal(body, &doc) != nil {
		return ""
	}
	return doc.Meta.Cache
}

// drain empties and closes a response body so connections are reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// retryAfterDelay decodes a 503's Retry-After hint (delta-seconds form),
// bounded by max; an absent or malformed header waits 100ms.
func retryAfterDelay(resp *http.Response, max time.Duration) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > max {
		d = max
	}
	return d
}

// buildWorkload pre-serialises every request body: n requests of `batch`
// systems each, drawn from a pool of `pool` distinct generated systems —
// randomly by default, round-robin with -cycle (the deterministic
// LRU-thrash shape of the cluster bench). It also returns the distinct
// pooled documents for -warmup.
func buildWorkload(rng *rand.Rand, n, batch, pool, heavy int, cycle bool) (bodies, poolDocs []string) {
	systems := make([]string, pool)
	for i := range systems {
		doc, err := json.Marshal(genSystem(rng, i, heavy))
		if err != nil {
			log.Fatal(err)
		}
		systems[i] = string(doc)
	}
	pick := func(i int) string {
		if cycle {
			return systems[i%pool]
		}
		return systems[rng.Intn(pool)]
	}
	bodies = make([]string, n)
	at := 0
	for i := range bodies {
		if batch <= 1 {
			bodies[i] = pick(at)
			at++
			continue
		}
		picks := make([]string, batch)
		for j := range picks {
			picks[j] = pick(at)
			at++
		}
		bodies[i] = `{"systems": [` + strings.Join(picks, ",") + `]}`
	}
	return bodies, systems
}

// buildWatchWorkload pre-serialises n /v1/watch session bodies: each
// picks a pooled system and walks its operating point through `steps`
// single-coordinate nudges — the trajectory shape the incremental delta
// engine is built for. The generator stream matches buildWorkload's, so
// runs stay reproducible per seed.
func buildWatchWorkload(rng *rand.Rand, n, pool, heavy, steps int, cycle bool) []string {
	systems := make([]spec.File, pool)
	for i := range systems {
		systems[i] = genSystem(rng, i, heavy)
	}
	bodies := make([]string, n)
	for i := range bodies {
		f := systems[i%pool]
		if !cycle {
			f = systems[rng.Intn(pool)]
		}
		points := make([][]float64, steps)
		cur := f.Perturbation.Orig
		for s := range points {
			next := append([]float64(nil), cur...)
			next[rng.Intn(len(next))] *= 0.95 + 0.1*rng.Float64()
			points[s] = next
			cur = next
		}
		doc, err := json.Marshal(spec.WatchRequest{System: f, Points: points})
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = string(doc)
	}
	return bodies
}

// consumeWatch drains one /v1/watch ndjson stream, counting frames and
// the changed radii they carry. A session only counts as served when the
// stream closes with a clean summary: a summary carrying an error, a
// missing summary (connection cut mid-stream), or an undecodable line
// all fail the request.
func consumeWatch(resp *http.Response) (frames, changed int64, err error) {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	done := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var msg struct {
			Done         *bool  `json:"done"`
			ChangedCount int    `json:"changed_count"`
			Error        string `json:"error"`
		}
		if uerr := json.Unmarshal(line, &msg); uerr != nil {
			return frames, changed, fmt.Errorf("watch frame: %w", uerr)
		}
		if msg.Done != nil {
			if msg.Error != "" {
				return frames, changed, fmt.Errorf("watch session aborted: %s", msg.Error)
			}
			done = true
			continue
		}
		frames++
		changed += int64(msg.ChangedCount)
	}
	if serr := sc.Err(); serr != nil {
		return frames, changed, serr
	}
	if !done {
		return frames, changed, fmt.Errorf("watch stream ended without a summary")
	}
	return frames, changed, nil
}

// genSystem draws one report-style system: a handful of machines whose
// finishing times are 0/1 sums of ETC entries bounded by τ·makespan
// (§3.1), plus one convex queueing-style feature in every fourth system
// (§3.2 forms). With heavy > 0 every system instead carries that many
// distinct convex features, so a radius-cache miss pays the numeric
// convex solver — the workload whose serving cost the cluster's
// aggregate cache capacity actually moves.
func genSystem(rng *rand.Rand, id, heavy int) spec.File {
	apps := 4 + rng.Intn(5)
	if heavy > 0 {
		// Heavier systems are higher-dimensional too: the convex solver's
		// per-miss cost grows with dim, which is the contrast the cluster
		// warm-vs-thrash series measures.
		apps = 12 + rng.Intn(5)
	}
	machines := 2 + rng.Intn(3)
	orig := make([]float64, apps)
	for i := range orig {
		orig[i] = 1 + 9*rng.Float64()
	}
	assign := make([]int, apps)
	finish := make([]float64, machines)
	for i := range assign {
		assign[i] = rng.Intn(machines)
		finish[assign[i]] += orig[i]
	}
	makespan := 0.0
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	tau := 1.2 + 0.3*rng.Float64()
	f := spec.File{
		Name:         fmt.Sprintf("gen-%d", id),
		Perturbation: spec.PerturbationSpec{Name: "C", Orig: orig, Units: "s"},
	}
	for m := 0; m < machines; m++ {
		coeffs := make([]float64, apps)
		for i, mi := range assign {
			if mi == m {
				coeffs[i] = 1
			}
		}
		max := tau * makespan
		f.Features = append(f.Features, spec.FeatureSpec{
			Name:   fmt.Sprintf("finish(m%d)", m),
			Max:    &max,
			Impact: spec.ImpactSpec{Type: "linear", Coeffs: coeffs},
		})
	}
	switch {
	case heavy > 0:
		for q := 0; q < heavy; q++ {
			max := 100 * makespan * makespan
			f.Features = append(f.Features, spec.FeatureSpec{
				Name: fmt.Sprintf("queue-%d", q),
				Max:  &max,
				Impact: spec.ImpactSpec{Type: "terms", Terms: []spec.TermSpec{
					{Kind: "power", Index: q % apps, Coeff: 1 + rng.Float64(), P: 2},
					{Kind: "power", Index: (q + 1) % apps, Coeff: 1 + rng.Float64(), P: 3},
					{Kind: "xlogx", Index: (q + 2) % apps, Coeff: 1 + rng.Float64()},
					{Kind: "exp", Index: (q + 3) % apps, Coeff: 0.1 + 0.1*rng.Float64(), P: 0.5},
				}},
			})
		}
	case id%4 == 0:
		max := 100 * makespan * makespan
		f.Features = append(f.Features, spec.FeatureSpec{
			Name: "queue",
			Max:  &max,
			Impact: spec.ImpactSpec{Type: "terms", Terms: []spec.TermSpec{
				{Kind: "power", Index: 0, Coeff: 1 + rng.Float64(), P: 2},
				{Kind: "xlogx", Index: 1 % apps, Coeff: 1 + rng.Float64()},
			}},
		})
	}
	return f
}

// printServerCache fetches /debug/vars and prints the shared-cache line,
// best-effort (a load test against a remote instance may not expose it).
func printServerCache(client *http.Client, base string) {
	resp, err := client.Get(base + "/debug/vars")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var vars struct {
		Cache struct {
			Hits, Misses   uint64
			Size, Capacity int
			HitRate        float64 `json:"hit_rate"`
		} `json:"fepiad.cache"`
	}
	if json.NewDecoder(resp.Body).Decode(&vars) != nil {
		return
	}
	fmt.Printf("server cache: %d hits / %d misses (%.1f%% hit rate), %d/%d entries\n",
		vars.Cache.Hits, vars.Cache.Misses, 100*vars.Cache.HitRate, vars.Cache.Size, vars.Cache.Capacity)
}
