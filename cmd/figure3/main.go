// Command figure3 regenerates the paper's Figure 3 (§4.2): robustness
// against makespan for 1000 randomly generated mappings of 20 independent
// applications on 5 machines, with the S₁(x) linear-cluster analysis.
//
// Usage:
//
//	figure3 [-seed N] [-n mappings] [-tau T] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure3: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	n := flag.Int("n", 1000, "number of random mappings")
	tau := flag.Float64("tau", 1.2, "makespan tolerance multiplier")
	csvPath := flag.String("csv", "", "also write the per-mapping series as CSV to this path")
	workers := flag.Int("workers", 0, "worker goroutines for the mapping evaluations (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := experiments.PaperFig3Config()
	cfg.Seed = *seed
	cfg.Mappings = *n
	cfg.Tau = *tau
	cfg.Workers = *workers
	res, err := experiments.RunFig3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
