// Command consistency runs the ETC-consistency ablation: the §4.2
// robustness-vs-makespan experiment repeated over the three structural ETC
// classes of Braun et al. (inconsistent — the paper's choice —,
// semi-consistent, consistent).
//
// Usage:
//
//	consistency [-seed N] [-n mappings] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("consistency: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	n := flag.Int("n", 500, "random mappings per class")
	csvPath := flag.String("csv", "", "also write the per-class summary as CSV to this path")
	flag.Parse()

	cfg := experiments.PaperConsistencyConfig()
	cfg.Seed = *seed
	cfg.Mappings = *n
	res, err := experiments.RunConsistency(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
