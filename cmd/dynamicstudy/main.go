// Command dynamicstudy compares the immediate-mode dynamic mapping
// heuristics of Maheswaran et al. (reference [21] of the paper) on
// makespan and on the online robustness timeline — the conditional Eq. 6
// radius of the committed work at every arrival.
//
// Usage:
//
//	dynamicstudy [-seed N] [-trials N] [-tau T] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynamicstudy: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	trials := flag.Int("trials", 20, "number of workloads to average over")
	tau := flag.Float64("tau", 1.2, "tolerance for the conditional radii")
	csvPath := flag.String("csv", "", "also write the table as CSV to this path")
	workers := flag.Int("workers", 0, "worker goroutines for the trial×heuristic grid (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := experiments.PaperDynStudyConfig()
	cfg.Seed = *seed
	cfg.Trials = *trials
	cfg.Tau = *tau
	cfg.Workers = *workers
	res, err := experiments.RunDynStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
