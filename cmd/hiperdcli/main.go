// Command hiperdcli analyses HiPer-D systems (§3.2) from JSON files: it
// evaluates a mapping's robustness against sensor-load increases, its
// slack, and the binding QoS constraint. It can also emit a freshly
// generated paper-scale instance as a starting file.
//
// Usage:
//
//	hiperdcli -emit > system.json                 # generate an instance
//	hiperdcli -mapping 0,1,2,0,1,... system.json  # analyse a mapping
//	hiperdcli -random 7 system.json               # analyse a random mapping
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"fepia/internal/hiperd"
	"fepia/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hiperdcli: ")
	emit := flag.Bool("emit", false, "generate a paper-scale instance and print it as JSON")
	emitSeed := flag.Int64("seed", 2003, "generation seed for -emit")
	nonlinear := flag.Float64("nonlinear", 0, "fraction of non-linear complexity terms for -emit")
	mappingStr := flag.String("mapping", "", "comma-separated machine per application")
	randomSeed := flag.Int64("random", -1, "analyse a random mapping drawn with this seed")
	flag.Parse()

	if *emit {
		params := hiperd.PaperGenParams()
		params.NonlinearFraction = *nonlinear
		sys, err := hiperd.GenerateSystem(stats.NewRNG(*emitSeed), params)
		if err != nil {
			log.Fatal(err)
		}
		data, err := hiperd.MarshalSystem(sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hiperdcli -emit | hiperdcli [-mapping CSV | -random SEED] system.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := hiperd.UnmarshalSystem(data)
	if err != nil {
		log.Fatal(err)
	}

	var m hiperd.Mapping
	switch {
	case *mappingStr != "":
		for _, part := range strings.Split(*mappingStr, ",") {
			j, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("parsing mapping: %v", err)
			}
			m = append(m, j)
		}
	case *randomSeed >= 0:
		m = hiperd.RandomMapping(stats.NewRNG(*randomSeed), sys)
		fmt.Printf("random mapping (seed %d): %v\n\n", *randomSeed, m)
	default:
		log.Fatal("provide -mapping or -random (or -emit)")
	}

	res, err := hiperd.Evaluate(sys, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d sensors, %d applications, %d machines, %d paths\n",
		sys.Sensors(), sys.Applications(), sys.Machines, len(sys.Paths))
	fmt.Printf("slack at λ^orig            = %.4f\n", res.Slack)
	fmt.Printf("robustness ρ(Φ, λ)         = %.0f objects/data set\n", res.Robustness)
	if cf := res.Analysis.CriticalFeature(); cf != nil {
		fmt.Printf("binding feature            = %s (%s)\n", cf.Feature, cf.Kind)
	}
	if res.BoundaryLoads != nil {
		fmt.Printf("λ* at the binding boundary = %.0f\n", res.BoundaryLoads)
	}
}
