// Command certify validates a robustness claim by pure Monte-Carlo
// sampling, independent of the analytic machinery: it checks that no
// sampled perturbation within the claimed radius violates any feature
// bound (soundness) and that directional searches find the boundary close
// to the claim (tightness).
//
// Usage:
//
//	certify system.json              # certify the analytically computed ρ
//	certify -rho 123.4 system.json   # certify an externally claimed ρ
//	certify -samples 10000 -dirs 500 system.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"fepia/internal/core"
	"fepia/internal/montecarlo"
	"fepia/internal/spec"
	"fepia/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("certify: ")
	rho := flag.Float64("rho", math.NaN(), "claimed robustness radius (default: compute analytically)")
	samples := flag.Int("samples", 4000, "interior soundness samples")
	dirs := flag.Int("dirs", 400, "directional tightness searches")
	seed := flag.Int64("seed", 1, "sampling seed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: certify [-rho R] [-samples N] [-dirs N] system.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := spec.Parse(data)
	if err != nil {
		log.Fatal(err)
	}

	claimed := *rho
	if math.IsNaN(claimed) {
		a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
		if err != nil {
			log.Fatal(err)
		}
		claimed = a.Robustness
		fmt.Printf("analytic ρ = %g (certifying it now)\n", claimed)
	}

	rep, err := montecarlo.Certify(stats.NewRNG(*seed), sys.Features, sys.Perturbation, claimed,
		montecarlo.Config{InteriorSamples: *samples, Directions: *dirs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	switch {
	case !rep.Sound:
		fmt.Println("verdict: UNSOUND — some perturbation within the claimed radius violates a bound")
		os.Exit(1)
	case !rep.Tight:
		fmt.Println("verdict: sound but conservative — the true boundary lies beyond the claim")
	default:
		fmt.Println("verdict: sound and tight")
	}
}
