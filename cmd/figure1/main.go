// Command figure1 regenerates the paper's Figure 1: the boundary curve
// {π : f(π) = β^max}, the assumed operating point π^orig, the closest
// boundary point π*, and the robustness radius between them.
//
// Usage:
//
//	figure1 [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure1: ")
	csvPath := flag.String("csv", "", "also write the curve and special points as CSV to this path")
	flag.Parse()

	res, err := experiments.RunFig1(experiments.PaperFig1Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
