// Command fepiad serves the robustness analysis over HTTP: the FePIA
// step-4 oracle as an online service, for scheduler loops and experiment
// harnesses that score many candidate mappings on demand (see
// docs/SERVICE.md for the endpoint reference).
//
//	fepiad                       # serve on :8080
//	fepiad -addr :9090 -pprof    # custom port, pprof enabled
//
// Endpoints: POST /v1/analyze (one spec document), POST /v1/batch (many
// systems over the worker pool and shared radius cache), GET /healthz,
// GET /debug/vars. The process drains gracefully on SIGTERM/SIGINT:
// in-flight analyses get -drain to finish, then are force-cancelled.
//
// Resilience (docs/SERVICE.md, "Failure modes & degraded serving"):
// transient solve failures retry up to -retry-max attempts, each /v1/
// endpoint sits behind a -breaker-window circuit breaker, and with
// -degraded (on by default) an open breaker or engine failure is served
// from the radius cache with a "degraded": true marker. The
// FEPIAD_FAULTS env knob activates the seeded fault-injection harness
// for chaos drills.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fepia/internal/faults"
	"fepia/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fepiad: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "analysis workers per batch request (0 = GOMAXPROCS)")
		cacheCap    = flag.Int("cache", 0, "shared radius-cache capacity in entries (0 = default)")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body in bytes")
		timeout     = flag.Duration("timeout", server.DefaultTimeout, "per-request analysis deadline")
		maxInFlight = flag.Int("max-inflight", server.DefaultMaxInFlight, "admitted concurrent requests before shedding with 503")
		retryAfter  = flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint on 503 responses")
		drain       = flag.Duration("drain", server.DefaultDrainTimeout, "graceful-shutdown drain budget")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")

		retryMax        = flag.Int("retry-max", server.DefaultRetryAttempts, "attempts per feature solve for transient failures (1 disables retrying)")
		breakerWindow   = flag.Int("breaker-window", server.DefaultBreakerWindow, "sliding outcome window of each endpoint's circuit breaker (0 disables)")
		breakerCooldown = flag.Duration("breaker-cooldown", server.DefaultBreakerCooldown, "how long an open breaker rejects before probing half-open")
		degraded        = flag.Bool("degraded", true, "serve cached analyses with a degraded marker when the engine is unavailable")
	)
	flag.Parse()

	// Flag semantics use 0/1 for "off"; the Config zero value means
	// "default", so off is passed as a negative.
	rm, bw := *retryMax, *breakerWindow
	if rm <= 1 {
		rm = -1
	}
	if bw <= 0 {
		bw = -1
	}

	// FEPIAD_FAULTS activates the chaos harness on a running instance,
	// e.g. FEPIAD_FAULTS="seed=7;max=100;solve:error=0.05". Empty (the
	// production default) leaves every injection point a no-op.
	injector, err := faults.ParseSchedule(os.Getenv("FEPIAD_FAULTS"))
	if err != nil {
		log.Fatal(err)
	}
	if injector != nil {
		log.Printf("FAULT INJECTION ACTIVE: FEPIAD_FAULTS=%q", os.Getenv("FEPIAD_FAULTS"))
	}

	s := server.New(server.Config{
		MaxBodyBytes:  *maxBody,
		Timeout:       *timeout,
		MaxInFlight:   *maxInFlight,
		RetryAfter:    *retryAfter,
		Workers:       *workers,
		CacheCapacity: *cacheCap,
		DrainTimeout:  *drain,
		EnablePprof:   *enablePprof,
		Log:           log.Default(),

		RetryMax:        rm,
		BreakerWindow:   bw,
		BreakerCooldown: *breakerCooldown,
		Degraded:        *degraded,
		Injector:        injector,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (timeout %v, max in-flight %d)", l.Addr(), *timeout, *maxInFlight)
	start := time.Now()
	if err := s.Run(ctx, l); err != nil {
		log.Fatal(err)
	}
	cs := s.CacheStats()
	log.Printf("drained cleanly after %v (cache: %d hits / %d misses)", time.Since(start).Round(time.Millisecond), cs.Hits, cs.Misses)
}
