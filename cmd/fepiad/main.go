// Command fepiad serves the robustness analysis over HTTP: the FePIA
// step-4 oracle as an online service, for scheduler loops and experiment
// harnesses that score many candidate mappings on demand (see
// docs/SERVICE.md for the endpoint reference).
//
//	fepiad                       # serve on :8080
//	fepiad -addr :9090 -pprof    # custom port, pprof enabled
//
// Endpoints: POST /v1/analyze (one spec document), POST /v1/batch (many
// systems over the worker pool and shared radius cache), GET /healthz,
// GET /debug/vars. The process drains gracefully on SIGTERM/SIGINT:
// in-flight analyses get -drain to finish, then are force-cancelled.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"fepia/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fepiad: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "analysis workers per batch request (0 = GOMAXPROCS)")
		cacheCap    = flag.Int("cache", 0, "shared radius-cache capacity in entries (0 = default)")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body in bytes")
		timeout     = flag.Duration("timeout", server.DefaultTimeout, "per-request analysis deadline")
		maxInFlight = flag.Int("max-inflight", server.DefaultMaxInFlight, "admitted concurrent requests before shedding with 503")
		retryAfter  = flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint on 503 responses")
		drain       = flag.Duration("drain", server.DefaultDrainTimeout, "graceful-shutdown drain budget")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	)
	flag.Parse()

	s := server.New(server.Config{
		MaxBodyBytes:  *maxBody,
		Timeout:       *timeout,
		MaxInFlight:   *maxInFlight,
		RetryAfter:    *retryAfter,
		Workers:       *workers,
		CacheCapacity: *cacheCap,
		DrainTimeout:  *drain,
		EnablePprof:   *enablePprof,
		Log:           log.Default(),
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (timeout %v, max in-flight %d)", l.Addr(), *timeout, *maxInFlight)
	start := time.Now()
	if err := s.Run(ctx, l); err != nil {
		log.Fatal(err)
	}
	cs := s.CacheStats()
	log.Printf("drained cleanly after %v (cache: %d hits / %d misses)", time.Since(start).Round(time.Millisecond), cs.Hits, cs.Misses)
}
