// Command fepiad serves the robustness analysis over HTTP: the FePIA
// step-4 oracle as an online service, for scheduler loops and experiment
// harnesses that score many candidate mappings on demand (see
// docs/SERVICE.md for the endpoint reference).
//
//	fepiad                       # serve on :8080
//	fepiad -addr :9090 -pprof    # custom port, pprof enabled
//
// Endpoints: POST /v1/analyze (one spec document), POST /v1/batch (many
// systems over the worker pool and shared radius cache), GET /healthz,
// GET /metrics (Prometheus text exposition, with SLO burn-rate gauges;
// ?federate=1 merges ring peers' registries), GET /v1/cluster/status
// (federated per-node health), GET /debug/vars, and GET /debug/traces
// (recent and slowest request traces with per-stage spans — cross-node
// trees on forwarded requests); see docs/OBSERVABILITY.md. Logs are
// structured (-log-format
// json|text, -log-level) with one access line per request carrying its
// X-Request-Id. The process drains gracefully on SIGTERM/SIGINT:
// in-flight analyses get -drain to finish, then are force-cancelled.
//
// Resilience (docs/SERVICE.md, "Failure modes & degraded serving"):
// transient solve failures retry up to -retry-max attempts, each /v1/
// endpoint sits behind a -breaker-window circuit breaker, and with
// -degraded (on by default) an open breaker or engine failure is served
// from the radius cache with a "degraded": true marker. The
// FEPIAD_FAULTS env knob activates the seeded fault-injection harness
// for chaos drills.
//
// Persistence & anytime serving (docs/SERVICE.md): -snapshot-path
// persists the radius cache across restarts (periodic + on drain,
// restored at boot; corrupt files boot cold, never crash), and -anytime
// turns deadline expiries into certified lower-bound answers with
// meta.anytime instead of 504s.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/faults"
	"fepia/internal/obs"
	"fepia/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "analysis workers per batch request (0 = GOMAXPROCS)")
		cacheCap    = flag.Int("cache", 0, "shared radius-cache capacity in entries (0 = default)")
		cacheShards = flag.Int("cache-shards", 0, "radius-cache shard count, rounded up to a power of two (0 = derived from GOMAXPROCS)")
		useKernel   = flag.Bool("kernel", false, "route linear features through the vectorized SoA analytic kernel (bit-identical results, shared radius cache on both paths)")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body in bytes")
		timeout     = flag.Duration("timeout", server.DefaultTimeout, "per-request analysis deadline")
		maxInFlight = flag.Int("max-inflight", server.DefaultMaxInFlight, "admitted concurrent requests before shedding with 503")
		retryAfter  = flag.Duration("retry-after", server.DefaultRetryAfter, "Retry-After hint on 503 responses")
		drain       = flag.Duration("drain", server.DefaultDrainTimeout, "graceful-shutdown drain budget")
		enablePprof = flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
		traceCap    = flag.Int("trace-cap", server.DefaultTraceCapacity, "request traces retained per /debug/traces list (recent, slowest)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "json", "log format: json or text")

		retryMax        = flag.Int("retry-max", server.DefaultRetryAttempts, "attempts per feature solve for transient failures (1 disables retrying)")
		breakerWindow   = flag.Int("breaker-window", server.DefaultBreakerWindow, "sliding outcome window of each endpoint's circuit breaker (0 disables)")
		breakerCooldown = flag.Duration("breaker-cooldown", server.DefaultBreakerCooldown, "how long an open breaker rejects before probing half-open")
		degraded        = flag.Bool("degraded", true, "serve cached analyses with a degraded marker when the engine is unavailable")

		snapshotPath     = flag.String("snapshot-path", "", "persist the radius cache here (periodic + on drain) and restore it at boot; empty disables persistence")
		snapshotInterval = flag.Duration("snapshot-interval", server.DefaultSnapshotInterval, "periodic cache-snapshot cadence (<= 0 snapshots on drain only)")
		anytime          = flag.Bool("anytime", false, "on deadline expiry answer with the best certified lower bound (meta.anytime) instead of 504; specs can also opt in per request")

		sloLatency      = flag.Float64("slo-latency-p99", 0, "p99 latency objective in milliseconds for the fepiad_slo_* burn-rate gauges (0 = default 500)")
		sloAvailability = flag.Float64("slo-availability", 0, "availability objective in (0,1) for the fepiad_slo_* burn-rate gauges (0 = default 0.999)")
		traceSlow       = flag.Duration("trace-slow-threshold", 0, "mark requests at or past this duration as slow: force-kept in /debug/traces and counted on fepiad_slow_requests_total (0 disables)")
		traceSample     = flag.Int("trace-sample", 1, "keep 1-in-N finished traces in the /debug/traces recent ring (slow-marked traces always kept; 1 keeps all)")

		nodeID         = flag.String("node-id", "", "this node's identity on the cluster ring (required with -peers)")
		peersFlag      = flag.String("peers", "", "full ring membership as id=url,id=url,... including this node (empty = solo); see docs/CLUSTER.md")
		peerReplicas   = flag.Int("peer-replicas", 0, "virtual points per node on the consistent-hash ring (0 = default; all nodes must agree)")
		forwardTimeout = flag.Duration("forward-timeout", 0, "per-attempt deadline for forwarding a request to its ring owner (0 = default)")
		compatDegraded = flag.Bool("compat-v1-degraded", false, "re-emit the deprecated top-level \"degraded\" result marker alongside meta.degraded (one release of grace)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("bad -log-level", "error", err.Error())
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level).With("service", "fepiad")
	slog.SetDefault(logger)

	// Reject nonsensical values early with a clean exit 2 instead of
	// letting withDefaults silently paper over them. flag.Visit walks only
	// flags the operator actually set, so the 0-as-default convention
	// (-workers 0, -cache-shards omitted, …) stays legal while an explicit
	// "-cache-shards 0" or "-timeout -1s" is a configuration error.
	badFlag := ""
	flag.Visit(func(f *flag.Flag) {
		bad := false
		switch f.Name {
		case "timeout", "retry-after", "drain", "breaker-cooldown", "forward-timeout":
			d, err := time.ParseDuration(f.Value.String())
			bad = err != nil || d < 0
		case "cache-shards":
			bad = *cacheShards <= 0
		case "peer-replicas":
			bad = *peerReplicas < 1
		case "cache":
			bad = *cacheCap < 0
		case "workers":
			bad = *workers < 0
		case "max-inflight":
			bad = *maxInFlight < 1
		case "max-body":
			bad = *maxBody < 1
		case "trace-cap":
			bad = *traceCap < 0
		case "retry-max":
			bad = *retryMax < 1
		case "breaker-window":
			bad = *breakerWindow < 0
		case "slo-latency-p99":
			bad = *sloLatency <= 0
		case "slo-availability":
			bad = *sloAvailability <= 0 || *sloAvailability >= 1
		case "trace-slow-threshold":
			d, err := time.ParseDuration(f.Value.String())
			bad = err != nil || d < 0
		case "trace-sample":
			bad = *traceSample < 1
		}
		if bad && badFlag == "" {
			badFlag = f.Name
		}
	})
	if badFlag != "" {
		logger.Error("invalid flag value", "flag", "-"+badFlag, "value", flag.Lookup(badFlag).Value.String())
		os.Exit(2)
	}

	// Flag semantics use 0/1 for "off"; the Config zero value means
	// "default", so off is passed as a negative.
	rm, bw := *retryMax, *breakerWindow
	if rm <= 1 {
		rm = -1
	}
	if bw <= 0 {
		bw = -1
	}
	// A zero or negative -snapshot-interval means drain-only persistence;
	// Config's zero value means "default cadence", so pass it as -1.
	si := *snapshotInterval
	if si <= 0 {
		si = -1
	}

	// FEPIAD_FAULTS activates the chaos harness on a running instance,
	// e.g. FEPIAD_FAULTS="seed=7;max=100;solve:error=0.05". Empty (the
	// production default) leaves every injection point a no-op.
	injector, err := faults.ParseSchedule(os.Getenv("FEPIAD_FAULTS"))
	if err != nil {
		logger.Error("bad FEPIAD_FAULTS", "error", err.Error())
		os.Exit(2)
	}
	if injector != nil {
		logger.Warn("FAULT INJECTION ACTIVE", "schedule", os.Getenv("FEPIAD_FAULTS"))
	}

	// Cluster membership: -peers names every node of the ring (this one
	// included); -node-id says which entry is us. Validation happens here
	// so a bad flag is a clean exit 2, not a server.New panic.
	peers, err := cluster.ParsePeers(*peersFlag)
	if err != nil {
		logger.Error("bad -peers", "error", err.Error())
		os.Exit(2)
	}
	if len(peers) > 0 {
		found := false
		for _, p := range peers {
			if p.ID == *nodeID {
				found = true
				break
			}
		}
		if !found {
			logger.Error("-node-id must name one of the -peers entries", "node_id", *nodeID)
			os.Exit(2)
		}
		// Dry-run the router construction to catch the rest (malformed
		// peer URLs, bad replica counts) with a clean exit too.
		if _, err := cluster.New(cluster.Config{Self: *nodeID, Peers: peers, Replicas: *peerReplicas}); err != nil {
			logger.Error("bad cluster config", "error", err.Error())
			os.Exit(2)
		}
	}

	cfg := server.Config{
		MaxBodyBytes:  *maxBody,
		Timeout:       *timeout,
		MaxInFlight:   *maxInFlight,
		RetryAfter:    *retryAfter,
		Workers:       *workers,
		CacheCapacity: *cacheCap,
		CacheShards:   *cacheShards,
		Kernel:        *useKernel,
		DrainTimeout:  *drain,
		TraceCapacity: *traceCap,
		EnablePprof:   *enablePprof,
		Log:           logger,

		RetryMax:        rm,
		BreakerWindow:   bw,
		BreakerCooldown: *breakerCooldown,
		Degraded:        *degraded,

		SnapshotPath:     *snapshotPath,
		SnapshotInterval: si,
		Anytime:          *anytime,

		SLOLatencyP99MS:    *sloLatency,
		SLOAvailability:    *sloAvailability,
		TraceSlowThreshold: *traceSlow,
		TraceSample:        *traceSample,

		NodeID:           *nodeID,
		Peers:            peers,
		PeerReplicas:     *peerReplicas,
		ForwardTimeout:   *forwardTimeout,
		CompatV1Degraded: *compatDegraded,
	}
	// Assign only a live injector: a typed-nil *Seeded in the interface
	// field would read as "injection active" and crash the first request.
	if injector != nil {
		cfg.Injector = injector
	}
	s := server.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(1)
	}
	logger.Info("serving",
		"addr", l.Addr().String(),
		"timeout", timeout.String(),
		"max_in_flight", *maxInFlight,
		"workers", *workers,
		"degraded_mode", *degraded,
		"node_id", *nodeID,
		"cluster_peers", len(peers))
	start := time.Now()
	if err := s.Run(ctx, l); err != nil {
		logger.Error("server exited", "error", err.Error())
		os.Exit(1)
	}
	cs := s.CacheStats()
	logger.Info("drained cleanly",
		"uptime", time.Since(start).Round(time.Millisecond).String(),
		"cache_hits", cs.Hits,
		"cache_misses", cs.Misses)
}
