// Command report regenerates every artifact of the paper's evaluation —
// Figures 1–4, Table 2 — plus this repository's extension experiments
// (violation curve, discrete-radius comparison, heuristic ablation) and
// writes a single self-contained text report. It is the one-command
// companion to EXPERIMENTS.md.
//
// Usage:
//
//	report               # full paper-scale run (~seconds)
//	report -quick        # reduced sample counts for a fast smoke run
//	report -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	out := flag.String("out", "", "write the report to this file instead of stdout")
	quick := flag.Bool("quick", false, "reduced sample counts")
	seed := flag.Int64("seed", 2003, "experiment seed")
	workers := flag.Int("workers", 0, "worker goroutines for the batch experiments (0 = GOMAXPROCS)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	section := func(title string) {
		fmt.Fprintf(w, "\n%s\n%s\n\n", title, underline(len(title)))
	}

	fmt.Fprintln(w, "FePIA robustness metric — full experimental report")
	fmt.Fprintln(w, "(regenerates every table and figure of Ali et al., IPPS 2003, plus extensions)")

	section("E1 — Figure 1: boundary curve and robustness radius")
	fig1, err := experiments.RunFig1(experiments.PaperFig1Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, fig1.Report())

	section("E2 — Figure 2: HiPer-D DAG and path decomposition")
	fig2cfg := experiments.PaperFig2Config()
	fig2cfg.Seed = *seed
	fig2, err := experiments.RunFig2(fig2cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, fig2.Report())

	section("E3 — Figure 3: robustness vs makespan (1000 random mappings)")
	fig3cfg := experiments.PaperFig3Config()
	fig3cfg.Seed = *seed
	fig3cfg.Workers = *workers
	if *quick {
		fig3cfg.Mappings = 200
	}
	fig3, err := experiments.RunFig3(fig3cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, fig3.Report())

	section("E4 — Figure 4: robustness vs slack (1000 random mappings)")
	fig4cfg := experiments.PaperFig4Config()
	fig4cfg.Seed = *seed
	fig4cfg.Workers = *workers
	if *quick {
		fig4cfg.Mappings = 200
	}
	fig4, err := experiments.RunFig4(fig4cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, fig4.Report())

	section("E5 — Table 2: similar slack, very different robustness")
	pair, err := experiments.FindTable2Pair(fig4, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, pair.Report())

	section("X1 — Violation probability vs error norm (simulation)")
	vcfg := experiments.PaperViolationConfig()
	vcfg.Seed = *seed
	if *quick {
		vcfg.PerRadius = 300
	}
	viol, err := experiments.RunViolation(vcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, viol.Report())

	section("X2 — Discrete loads: floor(ρ) vs exact lattice radius")
	dcfg := experiments.PaperDiscreteConfig()
	dcfg.Seed = *seed
	if *quick {
		dcfg.Mappings = 10
	}
	disc, err := experiments.RunDiscrete(dcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, disc.Report())

	section("X3 — Norm sensitivity: ρ under ℓ₁ / ℓ₂ / ℓ∞")
	ncfg := experiments.PaperNormsConfig()
	ncfg.Seed = *seed
	if *quick {
		ncfg.Mappings = 100
	}
	norms, err := experiments.RunNorms(ncfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, norms.Report())

	section("X4 — Heuristic ablation: makespan-greedy vs robustness-greedy")
	hcfg := experiments.PaperHeurStudyConfig()
	hcfg.Seed = *seed
	hcfg.Workers = *workers
	if *quick {
		hcfg.Trials = 2
	}
	heur, err := experiments.RunHeurStudy(hcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, heur.Report())

	section("X5 — Dynamic mapping: online robustness timeline")
	dyncfg := experiments.PaperDynStudyConfig()
	dyncfg.Seed = *seed
	dyncfg.Workers = *workers
	if *quick {
		dyncfg.Trials = 5
	}
	dyn, err := experiments.RunDynStudy(dyncfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, dyn.Report())

	section("X6 — ETC consistency ablation")
	ccfg := experiments.PaperConsistencyConfig()
	ccfg.Seed = *seed
	if *quick {
		ccfg.Mappings = 120
	}
	cons, err := experiments.RunConsistency(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprint(w, cons.Report())

	if *out != "" {
		fmt.Printf("report written to %s\n", *out)
	}
}

func underline(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
