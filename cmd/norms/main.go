// Command norms runs the norm-sensitivity ablation: the robustness metric
// of the same mappings computed under ℓ₁, ℓ₂ (the paper's choice), and ℓ∞,
// with rank correlations showing how much mapping *selection* depends on
// the norm.
//
// Usage:
//
//	norms [-seed N] [-n mappings] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("norms: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	n := flag.Int("n", 300, "number of random mappings")
	csvPath := flag.String("csv", "", "also write the per-mapping metrics as CSV to this path")
	flag.Parse()

	cfg := experiments.PaperNormsConfig()
	cfg.Seed = *seed
	cfg.Mappings = *n
	res, err := experiments.RunNorms(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
