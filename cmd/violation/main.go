// Command violation runs the simulation-backed validation experiment: the
// empirical probability of a makespan violation as a function of the ETC
// error norm, estimated with the event-driven simulator of internal/sim.
// The robustness metric guarantees the probability is exactly zero up to
// ρ; the curve shows it rising beyond.
//
// Usage:
//
//	violation [-seed N] [-per N] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("violation: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	per := flag.Int("per", 2000, "samples per sphere radius")
	csvPath := flag.String("csv", "", "also write the curve as CSV to this path")
	flag.Parse()

	cfg := experiments.PaperViolationConfig()
	cfg.Seed = *seed
	cfg.PerRadius = *per
	res, err := experiments.RunViolation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
