// Command scenariolab evolves the paper's §3.1 HCS example — independent
// applications mapped onto heterogeneous machines, makespan bounded by
// τ·M^orig — through seeded operational scenarios and reports how the
// robustness metric ρ_μ(Φ, C) behaves over time, using the incremental
// re-analysis engine: one watch session per mapping epoch, each step a
// delta update, not a cold solve.
//
// Scenarios:
//
//   - surge: a load surge on the critical machine's applications — their
//     execution times ramp up to a peak and back down (single epoch).
//   - drift: every application's execution time takes a slow geometric
//     random walk around its estimate (single epoch).
//   - failure: the critical machine fails mid-run — its applications are
//     remapped greedily onto the survivors (new epoch: new feature set,
//     new watch session) — and later recovers (third epoch).
//   - combined: failure riding on top of the surge ramp.
//
// A mapping change is an epoch boundary: the feature set Φ itself changes
// (machine memberships, bound τ·M^orig), so the session is re-opened —
// exactly the pack-reuse boundary of the kernel delta path. Within an
// epoch every step reuses the session.
//
// The lab drives either the in-process engine (-mode lib, a
// batch.Watcher) or a running fepiad (-mode live, streaming frames from
// GET|POST /v1/watch); both produce identical trajectories.
//
// Reported per run: the radius trajectory (per-step ρ, critical feature,
// changed-radius count), time-to-degraded (first step with ρ below the
// threshold), and recovery time (steps until ρ is back above it).
//
// Usage:
//
//	scenariolab [-scenario surge|drift|failure|combined] [-seed N]
//	            [-steps N] [-tasks N] [-machines N] [-tau T]
//	            [-threshold R] [-mode lib|live] [-url http://...]
//	            [-json]
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"time"

	"fepia/internal/batch"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/spec"
	"fepia/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scenariolab: ")
	scenario := flag.String("scenario", "failure", "timeline to run: surge, drift, failure, or combined")
	seed := flag.Int64("seed", 2003, "scenario seed (timeline and system are fully determined by it)")
	steps := flag.Int("steps", 30, "total trajectory steps across all epochs")
	tasks := flag.Int("tasks", 20, "applications |A|")
	machines := flag.Int("machines", 5, "machines |M|")
	tau := flag.Float64("tau", 1.2, "makespan tolerance (bound is τ·M^orig per epoch)")
	threshold := flag.Float64("threshold", 0, "degraded threshold on ρ (0 = half the first step's ρ)")
	mode := flag.String("mode", "lib", "engine: lib (in-process) or live (a running fepiad)")
	url := flag.String("url", "http://localhost:8080", "fepiad base URL for -mode live")
	jsonOut := flag.Bool("json", false, "emit the machine-readable report instead of text")
	flag.Parse()

	epochs, err := buildScenario(*scenario, *seed, *steps, *tasks, *machines, *tau)
	if err != nil {
		log.Fatal(err)
	}

	var traj []stepRecord
	switch *mode {
	case "lib":
		traj, err = runLib(epochs)
	case "live":
		traj, err = runLive(*url, epochs)
	default:
		err = fmt.Errorf("unknown -mode %q (want lib or live)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}

	rep := summarize(*scenario, *seed, *threshold, epochs, traj)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	printReport(rep)
}

// epoch is one mapping regime: a fixed feature set watched across its
// trajectory points. Epoch boundaries (machine failure, recovery) change
// the system document itself, so each epoch is its own watch session.
type epoch struct {
	Name   string      `json:"name"`
	File   spec.File   `json:"-"`
	Points [][]float64 `json:"-"`
}

// stepRecord is one point of the robustness-over-time trajectory.
type stepRecord struct {
	Step       int     `json:"step"`  // 1-based, global across epochs
	Epoch      string  `json:"epoch"` // epoch name
	Robustness float64 `json:"robustness"`
	Critical   string  `json:"critical_feature,omitempty"`
	Changed    int     `json:"changed"` // radii that moved vs the previous step
}

// report is the machine-readable run summary (-json).
type report struct {
	Scenario   string       `json:"scenario"`
	Seed       int64        `json:"seed"`
	Epochs     []string     `json:"epochs"`
	Threshold  float64      `json:"threshold"`
	Trajectory []stepRecord `json:"trajectory"`
	// MinRobustness and MinStep locate the trajectory's worst point.
	MinRobustness float64 `json:"min_robustness"`
	MinStep       int     `json:"min_step"`
	// TimeToDegraded is the first step with ρ below the threshold, -1 if
	// the run never degrades. RecoverySteps is how many steps ρ then
	// stays below it before recovering, -1 if it never does.
	TimeToDegraded int `json:"time_to_degraded"`
	RecoverySteps  int `json:"recovery_steps"`
}

// buildScenario generates the seeded system and its timeline. All
// randomness flows from one stats.RNG, so a (scenario, seed, sizes)
// tuple is one reproducible experiment in both modes.
func buildScenario(scenario string, seed int64, steps, tasks, machines int, tau float64) ([]epoch, error) {
	if steps < 3 {
		return nil, fmt.Errorf("-steps %d too short to tell a story (want ≥ 3)", steps)
	}
	rng := stats.NewRNG(seed)
	params := etcgen.PaperParams()
	params.Tasks, params.Machines = tasks, machines
	etc, err := etcgen.Generate(rng, params)
	if err != nil {
		return nil, err
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		return nil, err
	}
	// Start from a balanced mapping (greedy Minimum Completion Time, the
	// immediate-mode heuristic of the paper's reference [21]): losing a
	// machine from a balanced system is a genuine capacity loss, whereas
	// rebalancing a random mapping can accidentally IMPROVE the makespan
	// and invert the failure story.
	mapping, err := mctMapping(inst, -1)
	if err != nil {
		return nil, err
	}
	res, err := indalloc.Evaluate(mapping, tau)
	if err != nil {
		return nil, err
	}
	crit := res.CriticalMachine
	// The makespan promise is set once, from the nominal mapping (Eq. 3's
	// τ·M^orig): a machine failure does not renegotiate the SLO, it eats
	// into the slack against it — that is what time-to-degraded measures.
	bound := tau * mapping.Makespan(mapping.ETCVector())

	switch scenario {
	case "surge":
		ep := epoch{Name: "nominal", File: systemFile(mapping, bound, "surge")}
		point := mapping.ETCVector()
		for t := 0; t < steps; t++ {
			ep.Points = append(ep.Points, surgePoint(point, mapping, crit, t, steps))
		}
		return []epoch{ep}, nil

	case "drift":
		ep := epoch{Name: "nominal", File: systemFile(mapping, bound, "drift")}
		point := mapping.ETCVector()
		for t := 0; t < steps; t++ {
			ep.Points = append(ep.Points, append([]float64(nil), point...))
			point = driftStep(rng, point)
		}
		return []epoch{ep}, nil

	case "failure", "combined":
		surged := scenario == "combined"
		failAt, recoverAt := steps/3, 2*steps/3
		failed, err := remapWithout(mapping, crit)
		if err != nil {
			return nil, err
		}
		eps := []epoch{
			{Name: "nominal", File: systemFile(mapping, bound, scenario)},
			{Name: fmt.Sprintf("failed(m%d)", crit), File: systemFile(failed, bound, scenario)},
			{Name: "recovered", File: systemFile(mapping, bound, scenario)},
		}
		point := mapping.ETCVector()
		for t := 0; t < steps; t++ {
			var m *hcs.Mapping
			var ei int
			switch {
			case t < failAt:
				m, ei = mapping, 0
			case t < recoverAt:
				m, ei = failed, 1
			default:
				m, ei = mapping, 2
			}
			// Epoch entry: re-estimate the point on the epoch's mapping —
			// remapped applications get the ETC of their new machine.
			if t == failAt || t == recoverAt {
				point = reestimate(point, m)
			}
			p := append([]float64(nil), point...)
			if surged {
				p = surgePoint(p, m, crit, t, steps)
			}
			eps[ei].Points = append(eps[ei].Points, p)
			point = driftStep(rng, point)
		}
		return eps, nil
	}
	return nil, fmt.Errorf("unknown -scenario %q (want surge, drift, failure, or combined)", scenario)
}

// systemFile renders a mapping as the spec document both modes analyse:
// one finishing-time feature per non-empty machine, bounded above by the
// run-wide makespan promise (Eq. 3 with the nominal mapping's τ·M^orig),
// over the per-application execution-time perturbation (§3.1). Building
// the document — rather than core.Feature values directly — keeps lib
// and live modes on the same parse path, so their trajectories are
// byte-comparable.
func systemFile(m *hcs.Mapping, bound float64, scenario string) spec.File {
	orig := m.ETCVector()
	f := spec.File{
		Name:         "scenariolab-" + scenario,
		Perturbation: spec.PerturbationSpec{Name: "C", Orig: orig, Units: "time"},
	}
	for j := 0; j < m.Instance().Machines(); j++ {
		apps := m.OnMachine(j)
		if len(apps) == 0 {
			continue
		}
		coeffs := make([]float64, m.Instance().Applications())
		for _, i := range apps {
			coeffs[i] = 1
		}
		b := bound
		f.Features = append(f.Features, spec.FeatureSpec{
			Name:   fmt.Sprintf("F_%d", j),
			Max:    &b,
			Impact: spec.ImpactSpec{Type: "linear", Coeffs: coeffs},
		})
	}
	return f
}

// surgePoint applies the load-surge multiplier to the applications on
// machine target: a triangular ramp peaking at +60% halfway through the
// run — the classic λ-surge shape of an arrival burst.
func surgePoint(point []float64, m *hcs.Mapping, target, t, steps int) []float64 {
	half := float64(steps-1) / 2
	ramp := 1 - math.Abs(float64(t)-half)/half // 0 → 1 → 0
	mult := 1 + 0.6*ramp
	out := append([]float64(nil), point...)
	for _, i := range m.OnMachine(target) {
		out[i] *= mult
	}
	return out
}

// driftStep advances every execution time by one step of a geometric
// random walk (±2% volatility): ETC estimates erring slowly, the exact
// perturbation §3.1 analyses.
func driftStep(rng *stats.RNG, point []float64) []float64 {
	next := make([]float64, len(point))
	for i, c := range point {
		next[i] = c * math.Exp(0.02*rng.NormFloat64())
	}
	return next
}

// mctMapping assigns every application greedily to the machine with the
// least resulting finishing time (the Minimum Completion Time heuristic
// of the paper's reference [21]), skipping the excluded machine (-1
// excludes none).
func mctMapping(inst *hcs.Instance, excluded int) (*hcs.Mapping, error) {
	assign := make([]int, inst.Applications())
	load := make([]float64, inst.Machines())
	for i := range assign {
		best, bestLoad := -1, math.Inf(1)
		for k := 0; k < inst.Machines(); k++ {
			if k == excluded {
				continue
			}
			if done := load[k] + inst.ETC(i, k); done < bestLoad {
				best, bestLoad = k, done
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("no machine available (excluded %d of %d)", excluded, inst.Machines())
		}
		assign[i] = best
		load[best] = bestLoad
	}
	return hcs.NewMapping(inst, assign)
}

// remapWithout simulates machine failed dying: its applications move to
// the surviving machine with the least predicted finishing time, greedily
// in application order (MCT restricted to survivors); applications
// already elsewhere stay put, as a real rescheduler would leave them.
func remapWithout(m *hcs.Mapping, failed int) (*hcs.Mapping, error) {
	inst := m.Instance()
	if inst.Machines() < 2 {
		return nil, fmt.Errorf("cannot fail machine %d of a %d-machine system", failed, inst.Machines())
	}
	assign := append([]int(nil), m.Assign...)
	load := make([]float64, inst.Machines())
	for i, j := range assign {
		if j != failed {
			load[j] += inst.ETC(i, j)
		}
	}
	for i, j := range assign {
		if j != failed {
			continue
		}
		best, bestLoad := -1, math.Inf(1)
		for k := 0; k < inst.Machines(); k++ {
			if k == failed {
				continue
			}
			if done := load[k] + inst.ETC(i, k); done < bestLoad {
				best, bestLoad = k, done
			}
		}
		assign[i] = best
		load[best] = bestLoad
	}
	return hcs.NewMapping(inst, assign)
}

// reestimate maps the current execution-time vector onto a new mapping:
// applications whose machine changed take the new machine's ETC estimate
// (their history on the old machine says nothing about the new one);
// everything else keeps its current (possibly drifted) value.
func reestimate(point []float64, m *hcs.Mapping) []float64 {
	next := append([]float64(nil), point...)
	for i, j := range m.Assign {
		if est := m.Instance().ETC(i, j); est != point[i] {
			// Cheap proxy for "machine changed": the drifted value came
			// from the old machine's estimate, so only genuinely remapped
			// applications snap to a new estimate here when the drift
			// happens to coincide — and then the values are equal anyway.
			next[i] = est
		}
	}
	return next
}

// runLib drives the scenario through the in-process engine: one
// batch.Watcher per epoch, the kernel delta path on.
func runLib(epochs []epoch) ([]stepRecord, error) {
	var traj []stepRecord
	ctx := context.Background()
	step := 0
	for _, ep := range epochs {
		sys, err := spec.Build(ep.File)
		if err != nil {
			return nil, err
		}
		w, err := batch.NewWatcher(
			batch.Job{Features: sys.Features, Perturbation: sys.Perturbation},
			batch.Options{Core: sys.Options, Kernel: true, ShareBoundaries: true})
		if err != nil {
			return nil, err
		}
		for _, pt := range ep.Points {
			res, err := w.Step(ctx, pt)
			if err != nil {
				return nil, fmt.Errorf("epoch %s: %w", ep.Name, err)
			}
			step++
			rec := stepRecord{Step: step, Epoch: ep.Name,
				Robustness: res.Analysis.Robustness, Changed: len(res.Changed)}
			if cf := res.Analysis.CriticalFeature(); cf != nil {
				rec.Critical = cf.Feature
			}
			traj = append(traj, rec)
		}
	}
	return traj, nil
}

// runLive drives the scenario against a running fepiad: one streamed
// /v1/watch session per epoch, frames decoded as they arrive.
func runLive(baseURL string, epochs []epoch) ([]stepRecord, error) {
	client := &http.Client{Timeout: 5 * time.Minute}
	var traj []stepRecord
	step := 0
	for _, ep := range epochs {
		body, err := json.Marshal(spec.WatchRequest{System: ep.File, Points: ep.Points})
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(baseURL+"/v1/watch", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("epoch %s: %w", ep.Name, err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := bufio.NewReader(resp.Body).ReadString('\n')
			resp.Body.Close()
			return nil, fmt.Errorf("epoch %s: /v1/watch status %d: %s", ep.Name, resp.StatusCode, msg)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var probe struct {
				Done bool `json:"done"`
			}
			if err := json.Unmarshal(line, &probe); err != nil {
				resp.Body.Close()
				return nil, fmt.Errorf("epoch %s: bad frame: %w", ep.Name, err)
			}
			if probe.Done {
				var sum spec.WatchSummary
				if err := json.Unmarshal(line, &sum); err != nil {
					resp.Body.Close()
					return nil, err
				}
				if sum.Error != "" {
					resp.Body.Close()
					return nil, fmt.Errorf("epoch %s: session failed after %d steps: %s (%s)",
						ep.Name, sum.Steps, sum.Error, sum.ErrorKind)
				}
				continue
			}
			var fr spec.WatchFrame
			if err := json.Unmarshal(line, &fr); err != nil {
				resp.Body.Close()
				return nil, err
			}
			step++
			traj = append(traj, stepRecord{Step: step, Epoch: ep.Name,
				Robustness: fr.Robustness, Critical: fr.Critical, Changed: fr.ChangedCount})
		}
		err = sc.Err()
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("epoch %s: %w", ep.Name, err)
		}
	}
	return traj, nil
}

// summarize derives the headline numbers from the trajectory. A zero
// threshold defaults to half the first step's robustness — "the system
// lost half its slack" — so every scenario has a meaningful degraded
// line without hand-tuning.
func summarize(scenario string, seed int64, threshold float64, epochs []epoch, traj []stepRecord) report {
	rep := report{Scenario: scenario, Seed: seed, Trajectory: traj,
		Threshold: threshold, MinRobustness: math.Inf(1), MinStep: -1,
		TimeToDegraded: -1, RecoverySteps: -1}
	for _, ep := range epochs {
		rep.Epochs = append(rep.Epochs, ep.Name)
	}
	if len(traj) == 0 {
		return rep
	}
	if rep.Threshold == 0 {
		rep.Threshold = traj[0].Robustness / 2
	}
	for _, r := range traj {
		if r.Robustness < rep.MinRobustness {
			rep.MinRobustness, rep.MinStep = r.Robustness, r.Step
		}
	}
	for i, r := range traj {
		if r.Robustness < rep.Threshold {
			rep.TimeToDegraded = r.Step
			for j := i + 1; j < len(traj); j++ {
				if traj[j].Robustness >= rep.Threshold {
					rep.RecoverySteps = traj[j].Step - r.Step
					break
				}
			}
			break
		}
	}
	return rep
}

// printReport renders the human-readable trajectory and summary.
func printReport(rep report) {
	fmt.Printf("scenario %s (seed %d): %d steps across epochs %v\n\n",
		rep.Scenario, rep.Seed, len(rep.Trajectory), rep.Epochs)
	fmt.Printf("%5s  %-14s %12s  %-10s %7s\n", "step", "epoch", "ρ_μ(Φ,C)", "critical", "changed")
	for _, r := range rep.Trajectory {
		marker := ""
		if r.Robustness < rep.Threshold {
			marker = "  << degraded"
		}
		fmt.Printf("%5d  %-14s %12.4f  %-10s %7d%s\n",
			r.Step, r.Epoch, r.Robustness, r.Critical, r.Changed, marker)
	}
	fmt.Printf("\nthreshold ρ < %.4f (degraded line)\n", rep.Threshold)
	fmt.Printf("minimum ρ = %.4f at step %d\n", rep.MinRobustness, rep.MinStep)
	if rep.TimeToDegraded < 0 {
		fmt.Println("time to degraded: never — the system held its slack throughout")
	} else {
		fmt.Printf("time to degraded: step %d\n", rep.TimeToDegraded)
		if rep.RecoverySteps < 0 {
			fmt.Println("recovery: none — still degraded at the end of the run")
		} else {
			fmt.Printf("recovery: %d steps below the line\n", rep.RecoverySteps)
		}
	}
}
