// Command discrete compares the paper's floored robustness metric with
// the exact discrete (integer-lattice) radius on the §4.3 HiPer-D
// instance — the treatment §3.2 defers to [1]. The floor is provably
// conservative (floored ≤ continuous ≤ exact); this command quantifies the
// robustness it gives away.
//
// Usage:
//
//	discrete [-seed N] [-n mappings] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("discrete: ")
	seed := flag.Int64("seed", 2003, "experiment seed")
	n := flag.Int("n", 50, "number of feasible mappings compared")
	csvPath := flag.String("csv", "", "also write the comparison as CSV to this path")
	flag.Parse()

	cfg := experiments.PaperDiscreteConfig()
	cfg.Seed = *seed
	cfg.Mappings = *n
	res, err := experiments.RunDiscrete(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvPath)
	}
}
