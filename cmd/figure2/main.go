// Command figure2 regenerates the paper's Figure 2: a HiPer-D-like
// application DAG (sensors → applications → actuators) together with its
// decomposition into trigger and update paths.
//
// Usage:
//
//	figure2 [-seed N] [-paths N]
package main

import (
	"flag"
	"fmt"
	"log"

	"fepia/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure2: ")
	seed := flag.Int64("seed", 2003, "generation seed")
	paths := flag.Int("paths", 19, "required path count (0 = take the first generated DAG)")
	flag.Parse()

	cfg := experiments.PaperFig2Config()
	cfg.Seed = *seed
	cfg.TargetPaths = *paths
	res, err := experiments.RunFig2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
}
