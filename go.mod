module fepia

go 1.22
