GO ?= go

.PHONY: all build test race vet lint lintdoc checklinks bench microbench report tier1 tier2 serve loadtest fuzz chaos smoke

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint: go vet and the exported-identifier doc-comment audit always;
# staticcheck when installed (CI installs it, local runs skip it
# gracefully rather than demand a tool download).
lint: vet lintdoc
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go vet ran)"; \
	fi

# lintdoc: fail when an exported identifier in the audited packages
# (internal/vecmath, internal/batch, internal/kernel) has no doc comment.
lintdoc:
	./scripts/lintdoc.sh

# checklinks: verify intra-repo markdown links in README.md and docs/
# resolve to existing files (CI docs job).
checklinks:
	./scripts/checklinks.sh

# Race-detector run over the whole module, with an explicit pass over the
# concurrent batch engine (worker pool + shared radius cache).
race:
	$(GO) test -race ./internal/batch/...
	$(GO) test -race ./...

# bench: the reproducible benchmark harness — pinned seeds, frozen
# single-mutex baseline vs the live sharded cache, SoA kernel vs the
# per-feature analytic loop, the loadgen-driven multi-node cluster
# series (warm-hit scaling at 3 in-process nodes, kill-a-node chaos
# story), the restart series (warm boot from a cache snapshot vs
# cold restart), and the incremental series (delta re-analysis session
# vs full recomputes along a trajectory). BENCH_10.json artifact with
# >=2x contended, >=4x kernel, >=3x incremental, >=2.2x cluster-scaling,
# and >=1.5x warm-boot-p99 gates plus byte-identity, zero-dropped, and
# first-request-hit checks (see cmd/bench, cmd/loadgen, and
# docs/PERFORMANCE.md).
bench:
	./scripts/bench.sh

# microbench: one pass over the go-test micro benchmarks.
microbench:
	$(GO) test -bench=. -benchtime=1x ./...

report:
	$(GO) run ./cmd/report

# serve: run the fepiad HTTP robustness-analysis service on :8080
# (see docs/SERVICE.md for the endpoint reference).
serve:
	$(GO) run ./cmd/fepiad

# loadtest: hammer a fepiad with generated report-style specs. By default
# it spins up its own in-process server; set LOADTEST_URL to target a
# running instance (e.g. one started with `make serve`).
LOADTEST_URL ?=
loadtest:
ifeq ($(LOADTEST_URL),)
	$(GO) run ./cmd/loadgen -self -n 2000 -c 32 -batch 8
else
	$(GO) run ./cmd/loadgen -url $(LOADTEST_URL) -n 2000 -c 32 -batch 8
endif

# fuzz: a bounded fuzzing smoke over the spec parser, the retryable-
# error classifier, and the cache-snapshot decoder (CI runs this).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/spec
	$(GO) test -fuzz=FuzzRetryable -fuzztime=30s ./internal/faults
	$(GO) test -fuzz=FuzzSnapshotDecode -fuzztime=30s ./internal/batch

# chaos: the seeded fault-injection suite under the race detector —
# injected errors/panics/latency/cancels through the batch engine, the
# radius cache under concurrent eviction, breaker transitions, degraded
# serving, and the cluster kill-a-node story (a peer dies mid-run and
# every request still answers). Set FEPIA_CHAOS_SEED=<n> to pin the
# seeded schedule when reproducing a failure.
chaos:
	$(GO) test -race -run 'Chaos|Breaker|Degraded|Fault|Retry|Cluster' ./internal/faults ./internal/batch ./internal/server ./internal/cluster

# smoke: boot a real fepiad, drive one analysis, and curl the
# observability endpoints (/metrics, /debug/vars, /debug/traces).
smoke:
	./scripts/smoke.sh

# tier1: the gate every change must keep green.
tier1: build test

# tier2: static analysis plus the race detector across the module.
tier2: vet race
