GO ?= go

.PHONY: all build test race vet bench report tier1 tier2

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the whole module, with an explicit pass over the
# concurrent batch engine (worker pool + shared radius cache).
race:
	$(GO) test -race ./internal/batch/...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

report:
	$(GO) run ./cmd/report

# tier1: the gate every change must keep green.
tier1: build test

# tier2: static analysis plus the race detector across the module.
tier2: vet race
