package robustness

// One benchmark per paper artifact (E1–E7 of DESIGN.md) plus micro and
// ablation benches. The experiment benches regenerate the full artifact
// per iteration and additionally report the headline quantities via
// b.ReportMetric, so `go test -bench=.` doubles as a results table:
//
//	BenchmarkFigure3Experiment reports corr(makespan,ρ) and the max
//	robustness spread at similar makespan;
//	BenchmarkFigure4Experiment reports corr(slack,ρ) and the spread at
//	similar slack; BenchmarkTable2 reports the A/B robustness ratio.

import (
	"context"
	"reflect"
	"testing"

	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/experiments"
	"fepia/internal/hcs"
	"fepia/internal/heuristics"
	"fepia/internal/hiperd"
	"fepia/internal/indalloc"
	"fepia/internal/lattice"
	"fepia/internal/montecarlo"
	"fepia/internal/sim"
	"fepia/internal/stats"
)

// BenchmarkFigure1Boundary regenerates the Figure 1 illustration (E1):
// boundary curve sampling plus the convex minimum-norm radius.
func BenchmarkFigure1Boundary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(experiments.PaperFig1Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Radius, "radius")
		}
	}
}

// BenchmarkFigure2PathEnum regenerates the Figure 2 DAG (E2): the
// 19-path instance search plus path enumeration.
func BenchmarkFigure2PathEnum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig2(experiments.PaperFig2Config())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Paths) != 19 {
			b.Fatalf("paths = %d", len(res.Paths))
		}
	}
}

// BenchmarkFigure3Experiment regenerates Figure 3 (E3, E6): 1000 random
// mappings of the §4.2 instance, robustness + makespan + load-balance
// index + cluster classification for each.
func BenchmarkFigure3Experiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(experiments.PaperFig3Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PearsonMakespan, "corr")
			b.ReportMetric(res.MaxSpreadSimilarMakespan, "spread")
		}
	}
}

// BenchmarkFigure4Experiment regenerates Figure 4 (E4, E7): 1000 random
// mappings of the §4.3 HiPer-D instance, robustness + slack for each.
func BenchmarkFigure4Experiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(experiments.PaperFig4Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PearsonSlack, "corr")
			b.ReportMetric(res.MaxSpreadSimilarSlack, "spread")
		}
	}
}

// BenchmarkTable2 regenerates the Table 2 analogue (E5): the Figure 4
// population scan for the maximal-ratio similar-slack pair.
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.PaperFig4Config()
	res, err := experiments.RunFig4(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair, err := experiments.FindTable2Pair(res, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(pair.Ratio, "ratio")
		}
	}
}

// BenchmarkRadiusEq6 measures the §3.1 closed form on the paper instance —
// the per-mapping cost inside the Figure 3 loop.
func BenchmarkRadiusEq6(b *testing.B) {
	etc, err := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		b.Fatal(err)
	}
	m := hcs.RandomMapping(stats.NewRNG(2), inst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := indalloc.Evaluate(m, 1.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadiusGenericLinear measures the same radii through the generic
// hyperplane path of internal/core — the ablation of closed form vs
// generic machinery.
func BenchmarkRadiusGenericLinear(b *testing.B) {
	etc, err := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		b.Fatal(err)
	}
	m := hcs.RandomMapping(stats.NewRNG(2), inst)
	features, p, err := indalloc.Features(m, 1.2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(features, p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadiusConvexSolver measures the sequential-linearisation solver
// on the Figure 1 quadratic — the non-affine step-4 path.
func BenchmarkRadiusConvexSolver(b *testing.B) {
	f := Feature{
		Name: "phi",
		Impact: &FuncImpact{
			N:      2,
			F:      func(pi []float64) float64 { return pi[0]*pi[0] + pi[0]*pi[1] + pi[1]*pi[1] },
			Convex: true,
		},
		Bounds: NoMin(25),
	}
	p := Perturbation{Name: "π", Orig: []float64{1.5, 1.0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeRadius(f, p, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHiPerDEvaluate measures one full §3.2 mapping analysis — the
// per-mapping cost inside the Figure 4 loop.
func BenchmarkHiPerDEvaluate(b *testing.B) {
	sys, err := hiperd.GenerateSystem(stats.NewRNG(2003), hiperd.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	m := hiperd.RandomMapping(stats.NewRNG(1), sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hiperd.Evaluate(sys, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormAblation compares the metric under alternative norms on the
// same instance (extension: the paper fixes ℓ₂).
func BenchmarkNormAblation(b *testing.B) {
	etc, err := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		b.Fatal(err)
	}
	m := hcs.RandomMapping(stats.NewRNG(2), inst)
	features, p, err := indalloc.Features(m, 1.2)
	if err != nil {
		b.Fatal(err)
	}
	for _, norm := range []struct {
		name string
		n    core.Options
	}{
		{"l2", core.Options{}},
		{"l1", core.Options{Norm: L1{}}},
		{"linf", core.Options{Norm: LInf{}}},
	} {
		b.Run(norm.name, func(b *testing.B) {
			var rho float64
			for i := 0; i < b.N; i++ {
				a, err := core.Analyze(features, p, norm.n)
				if err != nil {
					b.Fatal(err)
				}
				rho = a.Robustness
			}
			b.ReportMetric(rho, "rho")
		})
	}
}

// BenchmarkHeuristics times each mapping heuristic on the paper instance
// and reports the makespan and robustness it achieves (the ablation table
// behind cmd/heuristicstudy).
func BenchmarkHeuristics(b *testing.B) {
	etc, err := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		b.Fatal(err)
	}
	suite := append(heuristics.All(),
		heuristics.RobustGreedy{Tau: 1.2},
		heuristics.RobustRefine{Tau: 1.2},
		heuristics.RobustGA{Tau: 1.2},
	)
	for _, h := range suite {
		h := h
		b.Run(sanitizeName(h.Name()), func(b *testing.B) {
			var span, rho float64
			for i := 0; i < b.N; i++ {
				m, err := h.Map(stats.NewRNG(7), inst)
				if err != nil {
					b.Fatal(err)
				}
				res, err := indalloc.Evaluate(m, 1.2)
				if err != nil {
					b.Fatal(err)
				}
				span, rho = res.PredictedMakespan, res.Robustness
			}
			b.ReportMetric(span, "makespan")
			b.ReportMetric(rho, "rho")
		})
	}
}

// BenchmarkAnalyzeBatch measures the batch engine on 64 random mappings
// of the §4.3 HiPer-D instance: the one-worker baseline vs the full
// GOMAXPROCS pool, and a cold vs warm radius cache. Setup asserts the
// acceptance contract — the parallel results are byte-identical to the
// sequential ones — before any timing starts.
func BenchmarkAnalyzeBatch(b *testing.B) {
	sys, err := hiperd.GenerateSystem(stats.NewRNG(2003), hiperd.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(4)
	ms := make([]hiperd.Mapping, 64)
	for i := range ms {
		ms[i] = hiperd.RandomMapping(rng, sys)
	}
	jobs, err := hiperd.Jobs(sys, ms)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	seq, err := AnalyzeBatch(ctx, jobs, BatchOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	par, err := AnalyzeBatch(ctx, jobs, BatchOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		b.Fatal("parallel AnalyzeBatch results differ from the sequential baseline")
	}
	run := func(opts func() BatchOptions) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeBatch(ctx, jobs, opts()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", run(func() BatchOptions { return BatchOptions{Workers: 1} }))
	b.Run("parallel", run(func() BatchOptions { return BatchOptions{} }))
	b.Run("parallel-coldcache", run(func() BatchOptions {
		return BatchOptions{Cache: NewRadiusCache(0)}
	}))
	warm := NewRadiusCache(0)
	if _, err := AnalyzeBatch(ctx, jobs, BatchOptions{Cache: warm}); err != nil {
		b.Fatal(err)
	}
	b.Run("parallel-warmcache", run(func() BatchOptions { return BatchOptions{Cache: warm} }))
}

// BenchmarkRadiusCacheConvex isolates the cache's payoff regime: radii
// that need the iterative convex solver rather than the closed
// hyperplane formula. All 32 jobs share the same (pointer-keyed) convex
// feature, so a warm cache answers every radius from the map — whereas
// on cheap affine radii (BenchmarkAnalyzeBatch) the key-building
// overhead can exceed the solve and the cache is rightly a loss.
func BenchmarkRadiusCacheConvex(b *testing.B) {
	f := Feature{
		Name: "phi",
		Impact: &FuncImpact{
			N:      2,
			F:      func(pi []float64) float64 { return pi[0]*pi[0] + pi[0]*pi[1] + pi[1]*pi[1] },
			Convex: true,
		},
		Bounds: NoMin(25),
	}
	job := BatchJob{
		Features:     []Feature{f},
		Perturbation: Perturbation{Name: "π", Orig: []float64{1.5, 1.0}},
	}
	jobs := make([]BatchJob, 32)
	for i := range jobs {
		jobs[i] = job
	}
	ctx := context.Background()
	run := func(opts BatchOptions) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeBatch(ctx, jobs, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("nocache", run(BatchOptions{}))
	warm := NewRadiusCache(0)
	if _, err := AnalyzeBatch(ctx, jobs, BatchOptions{Cache: warm}); err != nil {
		b.Fatal(err)
	}
	b.Run("warmcache", run(BatchOptions{Cache: warm}))
}

// BenchmarkMonteCarloCertify measures the sampling certification of one
// analytic radius.
func BenchmarkMonteCarloCertify(b *testing.B) {
	etc, err := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		b.Fatal(err)
	}
	m := hcs.RandomMapping(stats.NewRNG(2), inst)
	res, err := indalloc.Evaluate(m, 1.2)
	if err != nil {
		b.Fatal(err)
	}
	features, p, err := indalloc.Features(m, 1.2)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := montecarlo.Certify(rng, features, p, res.Robustness,
			montecarlo.Config{InteriorSamples: 500, Directions: 50})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Sound {
			b.Fatalf("analytic radius failed certification: %v", rep)
		}
	}
}

// BenchmarkViolationExperiment runs the simulation-backed validation (X1):
// violation probability vs error norm with the ρ-ball guarantee check.
func BenchmarkViolationExperiment(b *testing.B) {
	cfg := experiments.PaperViolationConfig()
	cfg.PerRadius = 500
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunViolation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.GuaranteeHolds {
			b.Fatalf("guarantee violated: %+v", res)
		}
	}
}

// BenchmarkDiscreteExperiment runs the exact-lattice comparison (X2):
// floor(ρ) vs the exact discrete radius on feasible HiPer-D mappings.
func BenchmarkDiscreteExperiment(b *testing.B) {
	cfg := experiments.PaperDiscreteConfig()
	cfg.Mappings = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDiscrete(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanGiveaway, "giveaway")
		}
	}
}

// BenchmarkLatticeExact measures one exact discrete-radius computation on
// a HiPer-D mapping (the per-row cost inside X2).
func BenchmarkLatticeExact(b *testing.B) {
	rng := stats.NewRNG(2003)
	sys, err := hiperd.GenerateSystem(rng, hiperd.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	var m hiperd.Mapping
	for {
		m = hiperd.RandomMapping(rng, sys)
		if hiperd.Slack(sys, m) > 0 {
			break
		}
	}
	features, p, err := hiperd.Features(sys, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lattice.MinViolatingPoint(features, p, lattice.Options{NonNegative: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRun measures one event-driven execution of a paper-scale
// mapping (the inner loop of X1).
func BenchmarkSimRun(b *testing.B) {
	etc, err := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		b.Fatal(err)
	}
	m := hcs.RandomMapping(stats.NewRNG(2), inst)
	c := m.ETCVector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(m, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicStudy runs the online-mapping comparison (X5).
func BenchmarkDynamicStudy(b *testing.B) {
	cfg := experiments.PaperDynStudyConfig()
	cfg.Trials = 5
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDynStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// sanitizeName makes heuristic names safe as sub-benchmark identifiers.
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', '*', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
