package robustness

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestFacadeMakespanExample walks the paper's running example (§2) through
// the public API alone: machine finishing times bounded by 1.3× the
// predicted makespan against ETC uncertainty.
func TestFacadeMakespanExample(t *testing.T) {
	// Two machines: m0 runs a0 (ETC 6) and a1 (ETC 4); m1 runs a2 (ETC 8).
	// Predicted makespan = 10; bound = 1.3 × 10 = 13.
	f0, err := NewLinearImpact([]float64{1, 1, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NewLinearImpact([]float64{0, 0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	features := []Feature{
		{Name: "F_0", Impact: f0, Bounds: NoMin(13)},
		{Name: "F_1", Impact: f1, Bounds: NoMin(13)},
	}
	p := Perturbation{Name: "C", Orig: []float64{6, 4, 8}, Units: "seconds"}
	a, err := Analyze(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// r(F_0) = (13−10)/√2 ≈ 2.121; r(F_1) = (13−8)/1 = 5 → ρ = 2.121.
	want := 3 / math.Sqrt2
	if math.Abs(a.Robustness-want) > 1e-12 {
		t.Errorf("ρ = %v want %v", a.Robustness, want)
	}
	if a.CriticalFeature().Feature != "F_0" {
		t.Errorf("critical = %s", a.CriticalFeature().Feature)
	}
	if a.Radii[0].Kind != AtMax {
		t.Errorf("bound kind = %v", a.Radii[0].Kind)
	}
}

func TestFacadeIndependentAllocation(t *testing.T) {
	etc := [][]float64{
		{1, 9},
		{2, 9},
		{9, 3},
		{9, 4},
	}
	res, err := EvaluateIndependentAllocation(etc, []int{0, 0, 1, 1}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.2*7 - 7) / math.Sqrt2
	if math.Abs(res.Robustness-want) > 1e-12 {
		t.Errorf("ρ = %v want %v", res.Robustness, want)
	}
	if _, err := EvaluateIndependentAllocation(etc, []int{0}, 1.2); err == nil {
		t.Errorf("bad assignment accepted")
	}
	if _, err := EvaluateIndependentAllocation([][]float64{{-1}}, []int{0}, 1.2); err == nil {
		t.Errorf("bad ETC accepted")
	}
}

func TestFacadeHiPerD(t *testing.T) {
	sys, err := GenerateHiPerD(2003, PaperHiPerDParams())
	if err != nil {
		t.Fatal(err)
	}
	m := RandomHiPerDMapping(7, sys)
	res, err := EvaluateHiPerD(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robustness < 0 || math.IsNaN(res.Robustness) {
		t.Errorf("ρ = %v", res.Robustness)
	}
	if res.Robustness != math.Floor(res.Robustness) {
		t.Errorf("HiPer-D ρ should be floored (discrete loads): %v", res.Robustness)
	}
	if math.IsNaN(res.Slack) {
		t.Errorf("slack is NaN")
	}
}

func TestFacadeMultiAnalyze(t *testing.T) {
	imp, err := NewLinearImpact([]float64{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sets := []ParameterSet{
		{
			Perturbation: Perturbation{Name: "x", Orig: []float64{0}},
			Features:     []Feature{{Name: "f", Impact: imp, Bounds: NoMin(3)}},
		},
	}
	m, err := MultiAnalyze(sets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ByParameter[0].Robustness != 3 {
		t.Errorf("ρ = %v", m.ByParameter[0].Robustness)
	}
}

func TestFacadeNonL2Norm(t *testing.T) {
	imp, err := NewLinearImpact([]float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := Feature{Name: "f", Impact: imp, Bounds: NoMin(10)}
	p := Perturbation{Name: "π", Orig: []float64{0, 0}}
	r, err := ComputeRadius(f, p, Options{Norm: L1{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Radius != 5 { // |10|/‖(1,2)‖∞
		t.Errorf("ℓ₁ radius = %v want 5", r.Radius)
	}
}

// TestFacadeTypedErrors checks the two public error families: client
// mistakes (ValidationError / ErrInvalidSpec) and engine failures
// (SolveError), distinguishable with errors.As exactly as cmd/fepiad
// distinguishes HTTP 400 from 500.
func TestFacadeTypedErrors(t *testing.T) {
	_, err := ParseSpec([]byte(`{"perturbation":{"orig":[1]},"norm":"l9","features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`))
	if !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("parse error %v does not match ErrInvalidSpec", err)
	}
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Path != "norm" {
		t.Fatalf("validation error without field path: %+v", err)
	}

	f := Feature{Name: "q", Bounds: NoMin(10), Impact: &FuncImpact{
		N: 2, F: func(x []float64) float64 { return x[0] * x[0] }, Convex: true,
	}}
	p := Perturbation{Name: "π", Orig: []float64{1, 1}}
	_, err = Analyze([]Feature{f}, p, Options{Norm: L1{}})
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("engine failure %v is not a SolveError", err)
	}
	if errors.Is(err, ErrInvalidSpec) {
		t.Error("a SolveError must not match ErrInvalidSpec")
	}
	if !errors.Is(err, ErrNormUnsupported) {
		t.Errorf("underlying cause lost: %v", err)
	}
}

// TestFacadeAnalyzeContext checks cancellation and that the wire-format
// round trip (ParseSpec → AnalyzeContext → EncodeAnalysis) matches the
// plain library path.
func TestFacadeAnalyzeContext(t *testing.T) {
	doc := []byte(`{"name":"ctx","perturbation":{"name":"C","orig":[6,4,8],"units":"s"},
	  "features":[{"name":"m0","max":13,"impact":{"type":"linear","coeffs":[1,1,0]}},
	              {"name":"m1","max":13,"impact":{"type":"linear","coeffs":[0,0,1]}}]}`)
	sys, err := ParseSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(cancelled, sys.Features, sys.Perturbation, sys.Options); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	a, err := AnalyzeContext(context.Background(), sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(EncodeAnalysis(sys.Name, a), EncodeAnalysis(sys.Name, plain)) {
		t.Fatalf("context path diverged from plain path")
	}
}
